// Quickstart: build a small database, run one query, and watch live query
// and operator progress — the whole public API in ~100 lines.
//
//   $ ./build/examples/quickstart
//
// Steps:
//   1. Create a catalog and load a table.
//   2. Build a physical plan with the pb:: helpers and finalize it.
//   3. Annotate it with optimizer estimates (the "showplan").
//   4. Execute it under the virtual clock, collecting DMV snapshots.
//   5. Replay the snapshots through a ProgressEstimator, LQS-style.

#include <cstdio>

#include "analysis/invariant_checker.h"
#include "analysis/validator.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "lqs/estimator.h"
#include "optimizer/annotate.h"
#include "storage/catalog.h"
#include "workload/plan_builder.h"

using namespace lqs;      // NOLINT: example code
using namespace lqs::pb;  // NOLINT

int main() {
  // 1. A catalog with one table: orders(id, customer, amount).
  Catalog catalog;
  auto orders = std::make_unique<Table>(
      "orders", Schema({{"id", DataType::kInt64},
                        {"customer", DataType::kInt64},
                        {"amount", DataType::kDouble}}));
  Rng rng(42);
  for (int64_t i = 0; i < 50000; ++i) {
    orders->AppendRow(Row{Value(i), Value(rng.NextInRange(0, 999)),
                          Value(rng.NextDouble() * 100)});
  }
  if (!orders->ClusterBy(0).ok()) return 1;
  if (!catalog.AddTable(std::move(orders)).ok()) return 1;
  StatisticsOptions stats;
  if (!catalog.BuildAllStatistics(stats).ok()) return 1;

  // 2. Plan: total amount per customer for a range of orders, sorted.
  //    Sort <- HashAggregate <- ClusteredIndexScan(pushed range predicate)
  auto root = Sort(
      HashAgg(CiScan("orders", ColBetween(/*col=*/0, 10000, 45000)),
              {/*group by customer*/ 1}, {Sum(2), Count()}),
      {/*order by customer*/ 0});
  auto plan_or = FinalizePlan(std::move(root), catalog);
  if (!plan_or.ok()) {
    std::fprintf(stderr, "plan error: %s\n",
                 plan_or.status().ToString().c_str());
    return 1;
  }
  Plan plan = std::move(plan_or).value();

  // 3. Optimizer annotation — estimated rows and CPU/I-O costs per node.
  if (!AnnotatePlan(&plan, catalog, OptimizerOptions{}).ok()) return 1;
  // Sanity-check the finished plan before estimating progress on it; the
  // validator catches malformed id spaces, arities and negative estimates.
  ValidationReport plan_report = PlanValidator(&catalog).Validate(plan);
  if (!plan_report.ok()) {
    std::fprintf(stderr, "%s", plan_report.ToString().c_str());
    return 1;
  }
  std::printf("Execution plan:\n%s\n", PlanToString(plan).c_str());

  // 4. Execute; the profiler polls the DMV counters every 5 virtual ms.
  ExecOptions exec;
  exec.snapshot_interval_ms = 5.0;
  auto result = ExecuteQuery(plan, &catalog, exec);
  if (!result.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("query returned %llu rows in %.1f virtual ms, %zu snapshots\n\n",
              static_cast<unsigned long long>(result->rows_returned),
              result->duration_ms, result->trace.snapshots.size());

  // 5. Replay the DMV snapshots through the LQS estimator. The invariant
  //    checker rides along and turns any out-of-range or inconsistent
  //    progress value into a nonzero exit.
  ProgressEstimator estimator(&plan, &catalog, EstimatorOptions::Lqs());
  ProgressInvariantChecker checker(&estimator);
  std::printf("%10s %10s | per-operator progress\n", "time(ms)", "query");
  const auto& snaps = result->trace.snapshots;
  const size_t stride = std::max<size_t>(1, snaps.size() / 12);
  // Workspace + report reused across the polling loop (the allocation-free
  // replay pattern; see the Workspace contract in lqs/estimator.h).
  ProgressEstimator::Workspace workspace;
  ProgressReport report;
  for (size_t i = 0; i < snaps.size(); i += stride) {
    checker.EstimateCheckedInto(snaps[i], &workspace, &report);
    std::printf("%10.1f %9.1f%% |", snaps[i].time_ms,
                100 * report.query_progress);
    for (int node = 0; node < plan.size(); ++node) {
      std::printf(" [%d]%3.0f%%", node, 100 * report.operator_progress[node]);
    }
    std::printf("\n");
  }
  checker.CheckFinal(result->trace.final_snapshot);
  if (!checker.report().ok()) {
    std::fprintf(stderr, "%s", checker.report().ToString().c_str());
    return 1;
  }
  std::printf("\nOperators: [0]=Sort [1]=Hash Aggregate [2]=Scan\n");
  return 0;
}
