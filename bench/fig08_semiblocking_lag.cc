// Reproduces Figures 7/8: a Parallelism (Gather Streams) operator above a
// Nested Loops join "lags" its child — the child's GetNext count runs far
// ahead because the exchange buffers rows. The paper highlights K_i ratios
// of ~88x and ~12x between the Nested Loop and the Parallelism operator.
//
// Expected shape: large child/exchange K ratios early in the run, converging
// to 1.0 at completion.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/plan_builder.h"

int main() {
  using namespace lqs;        // NOLINT
  using namespace lqs::bench;  // NOLINT
  using namespace lqs::pb;    // NOLINT

  TpcdsOptions opt;
  opt.scale = BenchScale();
  auto w = MakeTpcdsWorkload(opt);
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 1;
  }

  // Figure 7's plan: Gather Streams over a Nested Loops join whose inner is
  // a clustered seek into the fact table.
  NodePtr d = Filter(CiScan("date_dim"), ColBetween(0, 300, 420));
  NodePtr nl = Nlj(JoinKind::kInner, std::move(d),
                   CiSeek("store_sales", OuterCol(0), OuterCol(0)), nullptr,
                   /*buffered=*/true);
  NodePtr root = Gather(std::move(nl));
  auto plan_or = FinalizePlan(std::move(root), *w->catalog);
  if (!plan_or.ok()) {
    std::fprintf(stderr, "%s\n", plan_or.status().ToString().c_str());
    return 1;
  }
  Plan plan = std::move(plan_or).value();
  OptimizerOptions oo;
  if (!AnnotatePlan(&plan, *w->catalog, oo).ok()) return 1;

  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  // Pronounced producer-runs-ahead factor for the showcase (the paper's
  // measured ratios reach 88x).
  exec.exchange_pull_batch = 48;
  auto result = ExecuteQuery(plan, w->catalog.get(), exec);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // Node 0 = Gather Streams, node 1 = Nested Loops (its child).
  std::printf("Figure 8: GetNext divergence between Nested Loops and the\n");
  std::printf("Parallelism operator above it (buffering lag, §4.4)\n\n");
  std::printf("%12s %14s %14s %10s\n", "time (ms)", "K(NestedLoop)",
              "K(Parallelism)", "ratio");
  double max_ratio = 0;
  const auto& snaps = result->trace.snapshots;
  const size_t stride = std::max<size_t>(1, snaps.size() / 24);
  for (size_t i = 0; i < snaps.size(); i += stride) {
    const auto& s = snaps[i];
    const double k_nl = static_cast<double>(s.operators[1].row_count);
    const double k_ex = static_cast<double>(s.operators[0].row_count);
    const double ratio = k_ex > 0 ? k_nl / k_ex : (k_nl > 0 ? 1e9 : 0.0);
    if (k_ex > 0) max_ratio = std::max(max_ratio, ratio);
    std::printf("%12.1f %14.0f %14.0f %10.1fx\n", s.time_ms, k_nl, k_ex,
                ratio);
  }
  const auto& fin = result->trace.final_snapshot;
  std::printf("\nfinal: K(NestedLoop)=%llu K(Parallelism)=%llu\n",
              static_cast<unsigned long long>(fin.operators[1].row_count),
              static_cast<unsigned long long>(fin.operators[0].row_count));
  std::printf("max observed K ratio while both active: %.1fx "
              "(paper reports 12x-88x)\n",
              max_ratio);
  return 0;
}
