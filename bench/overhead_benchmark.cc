// Micro-benchmarks of the client-side estimator itself (google-benchmark):
// LQS polls the DMV every 500 ms (§2.2), so one Estimate() call per query
// per tick must be far below that budget. Measures progress estimation,
// bounds computation and plan analysis on a representative multi-join plan.

#include <benchmark/benchmark.h>

#include "analysis/invariant_checker.h"
#include "bench/bench_util.h"
#include "lqs/bounds.h"
#include "lqs/estimator.h"

namespace {

using namespace lqs;        // NOLINT
using namespace lqs::bench;  // NOLINT

struct Fixture {
  Workload workload;
  Plan* plan = nullptr;
  ProfileSnapshot snapshot;

  static Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture();
      TpchOptions opt;
      opt.scale = 0.1;
      auto w = MakeTpchWorkload(opt);
      if (!w.ok()) std::abort();
      fx->workload = std::move(w).value();
      OptimizerOptions oo;
      if (!AnnotateWorkload(&fx->workload, oo).ok()) std::abort();
      // q05 is the widest plan (6-way join with bitmap).
      for (auto& q : fx->workload.queries) {
        if (q.name == "q05") fx->plan = &q.plan;
      }
      ExecOptions exec;
      exec.snapshot_interval_ms = 5.0;
      auto run = ExecuteQuery(*fx->plan, fx->workload.catalog.get(), exec);
      if (!run.ok() || run->trace.snapshots.empty()) std::abort();
      fx->snapshot = run->trace.snapshots[run->trace.snapshots.size() / 2];
      return fx;
    }();
    return *f;
  }
};

void BM_EstimateFullLqs(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  ProgressEstimator est(f.plan, f.workload.catalog.get(),
                        EstimatorOptions::Lqs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.Estimate(f.snapshot));
  }
}
BENCHMARK(BM_EstimateFullLqs);

// The allocation-free path: same estimate as BM_EstimateFullLqs through a
// reused Workspace + report. The delta against BM_EstimateFullLqs is what
// per-call allocation plus the forgone incremental short-circuits cost;
// bench/estimator_throughput measures the same split over whole traces.
void BM_EstimateIntoReused(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  ProgressEstimator est(f.plan, f.workload.catalog.get(),
                        EstimatorOptions::Lqs());
  ProgressEstimator::Workspace workspace;
  ProgressReport report;
  for (auto _ : state) {
    est.EstimateInto(f.snapshot, &workspace, &report);
    benchmark::DoNotOptimize(report.query_progress);
  }
}
BENCHMARK(BM_EstimateIntoReused);

// Same per-snapshot work as BM_EstimateFullLqs but routed through the
// runtime invariant checker with its default (cheap) options — the delta
// between the two is the cost of leaving the checker on in production
// replay loops. Budget: under 5% on top of Estimate().
void BM_EstimateFullLqsChecked(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  ProgressEstimator est(f.plan, f.workload.catalog.get(),
                        EstimatorOptions::Lqs());
  ProgressInvariantChecker checker(&est);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.EstimateChecked(f.snapshot));
  }
  if (!checker.report().ok()) state.SkipWithError("invariant violation");
}
BENCHMARK(BM_EstimateFullLqsChecked);

// The deep-bounds variant recomputes and cross-checks Appendix A bounds on
// every snapshot; this is the test/debug configuration, benchmarked here so
// a regression in its (expected, roughly 2x) cost is visible.
void BM_EstimateFullLqsDeepChecked(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  ProgressEstimator est(f.plan, f.workload.catalog.get(),
                        EstimatorOptions::Lqs());
  InvariantCheckerOptions opts;
  opts.deep_bounds_check = true;
  ProgressInvariantChecker checker(&est, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.EstimateChecked(f.snapshot));
  }
  if (!checker.report().ok()) state.SkipWithError("invariant violation");
}
BENCHMARK(BM_EstimateFullLqsDeepChecked);

void BM_EstimateTgn(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  ProgressEstimator est(f.plan, f.workload.catalog.get(),
                        EstimatorOptions::TotalGetNext());
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.Estimate(f.snapshot));
  }
}
BENCHMARK(BM_EstimateTgn);

void BM_ComputeBounds(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeBounds(*f.plan, *f.workload.catalog, f.snapshot));
  }
}
BENCHMARK(BM_ComputeBounds);

void BM_AnalyzePlan(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzePlan(*f.plan));
  }
}
BENCHMARK(BM_AnalyzePlan);

void BM_EstimatorConstruction(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    ProgressEstimator est(f.plan, f.workload.catalog.get(),
                          EstimatorOptions::Lqs());
    benchmark::DoNotOptimize(&est);
  }
}
BENCHMARK(BM_EstimatorConstruction);

}  // namespace

BENCHMARK_MAIN();
