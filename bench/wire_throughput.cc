// Wire-format throughput benchmark: encodes and decodes the DMV snapshot
// stream of the TPC-DS / TPC-H bench workloads and reports sustained
// encode/decode bandwidth plus frame sizes — the serialization cost a remote
// monitor pays per 500 ms poll (DESIGN.md §10). The trailing "BENCH {...}"
// JSON line is the machine-readable result (scripts/bench.sh collects it).
//
//   $ ./build/bench/wire_throughput
//
// Every run also re-verifies the round-trip contract on the real traces:
// decode(encode(x)) re-encodes byte-identically, or the benchmark fails.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "remote/wire.h"
#include "workload/workload.h"

using namespace lqs;         // NOLINT: bench code
using namespace lqs::bench;  // NOLINT

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  TpcdsOptions ds;
  ds.scale = 0.2;
  auto wds = MakeTpcdsWorkload(ds);
  TpchOptions h;
  h.scale = 0.2;
  auto wh = MakeTpchWorkload(h);
  if (!wds.ok() || !wh.ok()) {
    std::fprintf(stderr, "workload construction failed\n");
    return 1;
  }
  OptimizerOptions oo;
  oo.selectivity_error = kBenchSelectivityError;
  if (!AnnotateWorkload(&wds.value(), oo).ok() ||
      !AnnotateWorkload(&wh.value(), oo).ok()) {
    return 1;
  }

  ExecOptions exec;
  exec.snapshot_interval_ms = kBenchSnapshotIntervalMs;
  std::vector<ProfileTrace> traces;
  size_t snapshot_count = 0;
  size_t operator_rows = 0;
  for (Workload* w : {&wds.value(), &wh.value()}) {
    for (const WorkloadQuery& q : w->queries) {
      auto result = ExecuteQuery(q.plan, w->catalog.get(), exec);
      if (!result.ok()) continue;
      for (const ProfileSnapshot& s : result.value().trace.snapshots) {
        snapshot_count++;
        operator_rows += s.operators.size();
      }
      traces.push_back(std::move(result.value().trace));
    }
  }
  if (traces.empty() || snapshot_count == 0) {
    std::fprintf(stderr, "no traces produced\n");
    return 1;
  }

  // Correctness first: every trace survives the wire byte-identically.
  size_t trace_stream_bytes = 0;
  for (const ProfileTrace& trace : traces) {
    std::string frame;
    EncodeTrace(trace, &frame);
    trace_stream_bytes += frame.size();
    auto decoded = DecodeTrace(frame);
    if (!decoded.ok()) {
      std::fprintf(stderr, "decode failed: %s\n",
                   decoded.status().ToString().c_str());
      return 1;
    }
    std::string reencoded;
    EncodeTrace(decoded.value(), &reencoded);
    if (reencoded != frame) {
      std::fprintf(stderr, "round trip not byte-identical\n");
      return 1;
    }
  }

  // Per-snapshot framing, the unit a PollResponse actually ships.
  std::vector<std::string> snapshot_frames;
  snapshot_frames.reserve(snapshot_count);
  size_t snapshot_bytes = 0;
  for (const ProfileTrace& trace : traces) {
    for (const ProfileSnapshot& snap : trace.snapshots) {
      std::string frame;
      EncodeSnapshot(snap, &frame);
      snapshot_bytes += frame.size();
      snapshot_frames.push_back(std::move(frame));
    }
  }

  // Encode bandwidth: re-serialize the whole snapshot stream until enough
  // wall time has accumulated for a stable rate.
  const double kMinSeconds = 0.3;
  size_t encode_bytes = 0;
  size_t encode_frames = 0;
  auto start = std::chrono::steady_clock::now();
  std::string scratch;
  do {
    for (const ProfileTrace& trace : traces) {
      for (const ProfileSnapshot& snap : trace.snapshots) {
        scratch.clear();
        EncodeSnapshot(snap, &scratch);
        encode_bytes += scratch.size();
        ++encode_frames;
      }
    }
  } while (SecondsSince(start) < kMinSeconds);
  const double encode_seconds = SecondsSince(start);

  // Decode bandwidth over the pre-encoded frames.
  size_t decode_bytes = 0;
  size_t decode_frames = 0;
  start = std::chrono::steady_clock::now();
  do {
    for (const std::string& frame : snapshot_frames) {
      auto decoded = DecodeSnapshot(frame);
      if (!decoded.ok()) {
        std::fprintf(stderr, "decode failed mid-benchmark\n");
        return 1;
      }
      decode_bytes += frame.size();
      ++decode_frames;
    }
  } while (SecondsSince(start) < kMinSeconds);
  const double decode_seconds = SecondsSince(start);

  const double mb = 1024.0 * 1024.0;
  const double encode_mb_per_sec = encode_bytes / mb / encode_seconds;
  const double decode_mb_per_sec = decode_bytes / mb / decode_seconds;
  const double bytes_per_snapshot =
      static_cast<double>(snapshot_bytes) / static_cast<double>(snapshot_count);
  const double bytes_per_operator_row =
      static_cast<double>(snapshot_bytes) / static_cast<double>(operator_rows);
  // In-memory footprint of the same data, for a wire-compression ratio.
  const double inmemory_bytes =
      static_cast<double>(operator_rows) * sizeof(OperatorProfile);

  std::printf("wire_throughput: %zu traces, %zu snapshots, %zu operator rows\n",
              traces.size(), snapshot_count, operator_rows);
  std::printf("  encode %.1f MB/s (%zu frames), decode %.1f MB/s (%zu frames)\n",
              encode_mb_per_sec, encode_frames, decode_mb_per_sec,
              decode_frames);
  std::printf("  %.1f bytes/snapshot, %.1f bytes/operator-row, %.2fx vs "
              "in-memory\n",
              bytes_per_snapshot, bytes_per_operator_row,
              inmemory_bytes / static_cast<double>(snapshot_bytes));

  std::printf(
      "BENCH {\"bench\":\"wire_throughput\",\"traces\":%zu,"
      "\"snapshots\":%zu,\"operator_rows\":%zu,"
      "\"encode_mb_per_sec\":%.1f,\"decode_mb_per_sec\":%.1f,"
      "\"bytes_per_snapshot\":%.1f,\"bytes_per_operator_row\":%.1f,"
      "\"trace_stream_bytes\":%zu,\"roundtrip_byte_identical\":true}\n",
      traces.size(), snapshot_count, operator_rows, encode_mb_per_sec,
      decode_mb_per_sec, bytes_per_snapshot, bytes_per_operator_row,
      trace_stream_bytes);
  return 0;
}
