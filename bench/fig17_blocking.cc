// Reproduces Figure 17: per-operator Error_time for the blocking operators
// (Hash Match, Sort) under the output-only progress model vs the §4.5
// two-phase (input + output) model, aggregated over all five workloads.
//
// Expected shape (paper, Fig. 17): the two-phase model noticeably reduces
// the error for both operator families, while meaningful error remains.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace lqs;        // NOLINT
  using namespace lqs::bench;  // NOLINT

  EstimatorOptions output_only = EstimatorOptions::Lqs();
  output_only.two_phase_blocking = false;
  EstimatorOptions two_phase = EstimatorOptions::Lqs();

  std::vector<EstimatorConfig> configs;
  configs.push_back({"Output Ni only", output_only});
  configs.push_back({"Input+Output Ni", two_phase});

  std::printf("Figure 17: two-phase model for blocking operators\n");
  std::printf("bench scale = %.2f\n", BenchScale());
  auto workloads = MakeAllWorkloads();
  std::vector<WorkloadResult> results;
  for (Workload& w : workloads) {
    std::printf("running %s (%zu queries)...\n", w.name.c_str(),
                w.queries.size());
    results.push_back(EvaluateWorkload(w, configs));
  }

  // Full per-operator table (the figure shows Hash Match and Sort).
  PrintPerOperatorTable(
      "=== Figure 17 (per-operator Error_time; see Hash Match / Sort rows) "
      "===",
      results, configs, /*use_time_metric=*/true);

  // Focused summary matching the figure's two bars.
  double err[2][2] = {{0, 0}, {0, 0}};
  int cnt[2][2] = {{0, 0}, {0, 0}};
  for (const auto& r : results) {
    for (size_t c = 0; c < configs.size(); ++c) {
      for (const auto& [type, cell] : r.op_time_error[c]) {
        int family = -1;
        if (type == OpType::kHashAggregate || type == OpType::kHashJoin) {
          family = 0;  // "Hash Match"
        } else if (IsSortFamily(type)) {
          family = 1;  // "Sort"
        }
        if (family < 0) continue;
        err[family][c] += cell.first;
        cnt[family][c] += cell.second;
      }
    }
  }
  std::printf("\n=== Figure 17 summary ===\n");
  std::printf("%-12s %18s %18s\n", "operator", "Output Ni only",
              "Input+Output Ni");
  const char* names[2] = {"Hash Match", "Sort"};
  for (int f = 0; f < 2; ++f) {
    std::printf("%-12s %18.4f %18.4f\n", names[f],
                cnt[f][0] ? err[f][0] / cnt[f][0] : 0.0,
                cnt[f][1] ? err[f][1] / cnt[f][1] : 0.0);
  }
  return 0;
}
