// Reproduces Figure 6 / §4.3: a Hash Join whose build side creates a bitmap
// filter that is evaluated inside the probe-side scan. The probe scan's
// output-row fraction is a misleading progress signal (the bitmap's
// selectivity estimate is poor); the §4.3 technique bases progress on the
// fraction of logical I/O instead.
//
// Expected shape: the I/O-fraction progress tracks the scan's true activity
// window closely; the row-fraction progress does not.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "lqs/estimator.h"
#include "workload/plan_builder.h"

int main() {
  using namespace lqs;        // NOLINT
  using namespace lqs::bench;  // NOLINT
  using namespace lqs::pb;    // NOLINT

  TpchOptions opt;
  opt.scale = BenchScale();
  auto w = MakeTpchWorkload(opt);
  if (!w.ok()) return 1;

  // The Figure 6 plan shape: build = filtered suppliers (+ Bitmap Create),
  // probe = lineitem scan probing the bitmap inside the storage engine.
  NodePtr build = BitmapCreate(
      Filter(CiScan("supplier"), ColCmp(1, CompareOp::kLe, 3)), 0);
  NodePtr probe = CiScan("lineitem");
  ProbeBitmap(probe.get(), 2);  // l_suppkey
  NodePtr root = HashJoin(JoinKind::kInner, std::move(build),
                          std::move(probe), {0}, {2});
  auto plan_or = FinalizePlan(std::move(root), *w->catalog);
  if (!plan_or.ok()) {
    std::fprintf(stderr, "%s\n", plan_or.status().ToString().c_str());
    return 1;
  }
  if (!LinkBitmaps(&plan_or.value()).ok()) return 1;
  Plan plan = std::move(plan_or).value();
  OptimizerOptions oo;
  oo.selectivity_error = kBenchSelectivityError;
  if (!AnnotatePlan(&plan, *w->catalog, oo).ok()) return 1;

  std::printf("Figure 6: plan with bitmap filter pushed into the scan\n\n%s\n",
              PlanToString(plan).c_str());

  int scan_id = -1;
  plan.root->Visit([&](const PlanNode& n) {
    if (n.bitmap_source_id >= 0) scan_id = n.id;
  });

  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  auto result = ExecuteQuery(plan, w->catalog.get(), exec);
  if (!result.ok()) return 1;

  EstimatorOptions with_io = EstimatorOptions::Lqs();
  EstimatorOptions without_io = EstimatorOptions::Lqs();
  without_io.storage_predicate_io = false;
  ProgressEstimator est_io(&plan, w->catalog.get(), with_io);
  ProgressEstimator est_rows(&plan, w->catalog.get(), without_io);

  const auto& fin = result->trace.final_snapshot;
  const double t0 = fin.operators[scan_id].open_time_ms;
  const double t1 = fin.operators[scan_id].last_active_ms;

  std::printf("probe-scan progress (§4.3):\n");
  std::printf("%12s %16s %16s %12s\n", "time (ms)", "I/O fraction",
              "row fraction", "true");
  double err_io = 0;
  double err_rows = 0;
  int n = 0;
  const auto& snaps = result->trace.snapshots;
  const size_t stride = std::max<size_t>(1, snaps.size() / 20);
  ProgressEstimator::Workspace ws_io;
  ProgressEstimator::Workspace ws_rows;
  ProgressReport report;
  for (size_t i = 0; i < snaps.size(); ++i) {
    const auto& s = snaps[i];
    if (s.time_ms < t0 || s.time_ms > t1 || t1 <= t0) continue;
    const double true_frac = (s.time_ms - t0) / (t1 - t0);
    est_io.EstimateInto(s, &ws_io, &report);
    const double p_io = report.operator_progress[scan_id];
    est_rows.EstimateInto(s, &ws_rows, &report);
    const double p_rows = report.operator_progress[scan_id];
    err_io += std::abs(p_io - true_frac);
    err_rows += std::abs(p_rows - true_frac);
    n++;
    if (i % stride == 0) {
      std::printf("%12.1f %16.3f %16.3f %12.3f\n", s.time_ms, p_io, p_rows,
                  true_frac);
    }
  }
  if (n > 0) {
    std::printf("\nError_time(I/O fraction)  = %.4f  (expected: low)\n",
                err_io / n);
    std::printf("Error_time(row fraction)  = %.4f\n", err_rows / n);
  }
  const auto& scan = fin.operators[scan_id];
  std::printf("\nprobe scan: %llu rows output of %llu pages read "
              "(bitmap removed the rest inside the storage engine)\n",
              static_cast<unsigned long long>(scan.row_count),
              static_cast<unsigned long long>(scan.logical_read_count));
  return 0;
}
