// Reproduces Figure 19: operator frequency across the TPC-H workload's query
// plans under the rowstore (DTA-like) vs columnstore physical designs.
//
// Expected shape (paper, Fig. 19): the rowstore design shows a wide operator
// mix (seeks, nested loops, merge joins...); the columnstore design
// concentrates on Columnstore Index Scans and Hash Joins/Aggregates.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"

int main() {
  using namespace lqs;        // NOLINT
  using namespace lqs::bench;  // NOLINT

  std::printf("Figure 19: operator distribution per physical design\n");

  std::map<OpType, int> counts[2];
  const char* names[2] = {"TPC-H (rowstore)", "TPC-H ColumnStore"};
  for (int d = 0; d < 2; ++d) {
    TpchOptions opt;
    opt.scale = 0.05;  // plan shape only; data size irrelevant here
    opt.design =
        d == 0 ? PhysicalDesign::kRowstore : PhysicalDesign::kColumnstore;
    auto w = MakeTpchWorkload(opt);
    if (!w.ok()) {
      std::fprintf(stderr, "workload failed: %s\n",
                   w.status().ToString().c_str());
      return 1;
    }
    for (const WorkloadQuery& q : w->queries) {
      q.plan.root->Visit(
          [&](const PlanNode& n) { counts[d][n.type]++; });
    }
  }

  std::printf("\n=== Figure 19 (operator counts over the 22 TPC-H plans) ===\n");
  std::printf("%-30s %20s %20s\n", "operator", names[0], names[1]);
  std::map<OpType, int> all;
  for (int d = 0; d < 2; ++d) {
    for (auto& [t, c] : counts[d]) all[t] += c;
  }
  for (auto& [type, total] : all) {
    (void)total;
    std::printf("%-30s %20d %20d\n", OpTypeName(type), counts[0][type],
                counts[1][type]);
  }
  return 0;
}
