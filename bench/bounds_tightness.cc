// Bounds-engine tightness: does intersecting the Appendix A envelope with
// LpBound ℓp-norm pessimistic upper bounds (arXiv:2502.05912) tighten the
// per-operator intervals, and does the tighter clamp improve end-to-end
// Error_time when the optimizer's cardinalities are seeded wrong?
//
// Method: the TPC-H (skewed) and TPC-DS workloads are annotated with seeded
// selectivity misestimation (two severities per workload, like
// ensemble_accuracy) so the estimates the bounds must clamp are genuinely
// bad. Every query executes once; at the ~50% snapshot both engines derive
// intervals through ComputeBoundsPipelineInto and the per-node upper-bound
// q-error UB/max(1, N_true) is collected per operator class. The same trace
// then replays through EvaluateQuery twice — Appendix A only vs intersected
// — and Error_time aggregates per engine.
//
// Gate (exit 1 on violation): the intersected pipeline's total Error_time
// must not exceed Appendix A's. The intersection can only shrink intervals
// (lower = max, upper = min, inversions resolve to Appendix A), so a
// regression here means an unsound LpBound cap clamped the estimate away
// from the truth.
//
// Output: deterministic tables plus trailing "BENCH {...}" JSON lines
// (scripts/bench.sh collects them into BENCH_bounds.json).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "lqs/bounds.h"
#include "lqs/metrics.h"
#include "workload/workload.h"

namespace {

using namespace lqs;  // NOLINT

// Upper-bound q-errors of one engine, joins tracked separately (that is
// where the ℓp caps act; everything else passes bounds through).
struct QErrors {
  std::vector<double> all;
  std::vector<double> joins;
  long long unbounded = 0;  // UB = +inf (spools, declined rebind subtrees)
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t ix = static_cast<size_t>(p * (v.size() - 1) + 0.5);
  return v[std::min(ix, v.size() - 1)];
}

void Collect(const Plan& plan, const CardinalityBounds& b,
             const ProfileSnapshot& fin, QErrors* out) {
  for (int i = 0; i < plan.size(); ++i) {
    if (!std::isfinite(b.upper[i])) {
      out->unbounded++;
      continue;
    }
    const double n_true = static_cast<double>(fin.operators[i].row_count);
    const double q = b.upper[i] / std::max(1.0, n_true);
    out->all.push_back(q);
    if (IsJoin(plan.node(i).type)) out->joins.push_back(q);
  }
}

}  // namespace

int main() {
  using namespace lqs::bench;  // NOLINT

  ExecOptions exec;
  exec.snapshot_interval_ms = kBenchSnapshotIntervalMs;

  struct Config {
    std::string workload;
    uint64_t seed;
    double selectivity_error;
  };
  const Config configs[] = {
      {"tpch", 7, kBenchSelectivityError},
      {"tpch", 1031, 2.0},
      {"tpcds", 13, kBenchSelectivityError},
      {"tpcds", 4099, 2.0},
  };

  QErrors q_appendix, q_intersect;
  double time_appendix = 0, time_intersect = 0;
  double count_appendix = 0, count_intersect = 0;
  uint64_t tightenings = 0, inversions = 0;
  int queries = 0;

  std::string bench_lines;
  char line[512];
  for (const Config& cfg : configs) {
    StatusOr<Workload> w = Status::NotFound("unset");
    if (cfg.workload == "tpch") {
      TpchOptions opt;
      opt.scale = BenchScale();
      w = MakeTpchWorkload(opt);
    } else {
      TpcdsOptions opt;
      opt.scale = BenchScale();
      w = MakeTpcdsWorkload(opt);
    }
    if (!w.ok()) {
      std::fprintf(stderr, "workload %s failed: %s\n", cfg.workload.c_str(),
                   w.status().ToString().c_str());
      return 1;
    }
    OptimizerOptions oo;
    oo.selectivity_error = cfg.selectivity_error;
    oo.seed = cfg.seed;
    if (!AnnotateWorkload(&w.value(), oo).ok()) return 1;

    double wl_appendix = 0, wl_intersect = 0;
    int wl_queries = 0;
    for (WorkloadQuery& q : w->queries) {
      auto run = ExecuteQuery(q.plan, w->catalog.get(), exec);
      if (!run.ok() || run->trace.snapshots.size() < 10) continue;
      const auto& snaps = run->trace.snapshots;
      const ProfileSnapshot& fin = run->trace.final_snapshot;
      const ProfileSnapshot& mid = snaps[snaps.size() / 2];

      const PlanAnalysis analysis = AnalyzePlan(q.plan, w->catalog.get());
      CardinalityBounds b_a, b_x, scratch;
      BoundsEngineStats stats;
      ComputeBoundsPipelineInto(BoundsEngineKind::kAppendixA, q.plan,
                                *w->catalog, mid, nullptr, analysis, nullptr,
                                &b_a, &scratch, nullptr);
      ComputeBoundsPipelineInto(BoundsEngineKind::kIntersect, q.plan,
                                *w->catalog, mid, nullptr, analysis, nullptr,
                                &b_x, &scratch, &stats);
      Collect(q.plan, b_a, fin, &q_appendix);
      Collect(q.plan, b_x, fin, &q_intersect);
      tightenings += stats.lp_tightenings;
      inversions += stats.intersection_inversions;

      const QueryEvaluation ea =
          EvaluateQuery(q.plan, *w->catalog, run->trace,
                        EstimatorOptions::Lqs());
      EstimatorOptions lp = EstimatorOptions::Lqs();
      lp.bounds_engine = BoundsEngineKind::kIntersect;
      const QueryEvaluation ex =
          EvaluateQuery(q.plan, *w->catalog, run->trace, lp);
      time_appendix += ea.error_time;
      time_intersect += ex.error_time;
      count_appendix += ea.error_count;
      count_intersect += ex.error_count;
      wl_appendix += ea.error_time;
      wl_intersect += ex.error_time;
      ++queries;
      ++wl_queries;
    }
    if (wl_queries == 0) continue;
    std::printf("%-6s seed=%-5llu e=%.1f  queries=%2d  Error_time "
                "appendix=%.4f intersect=%.4f\n",
                cfg.workload.c_str(),
                static_cast<unsigned long long>(cfg.seed),
                cfg.selectivity_error, wl_queries, wl_appendix / wl_queries,
                wl_intersect / wl_queries);
    std::snprintf(line, sizeof(line),
                  "BENCH {\"bench\":\"bounds_tightness\",\"workload\":\"%s\","
                  "\"seed\":%llu,\"selectivity_error\":%.2f,\"queries\":%d,"
                  "\"appendix_error_time\":%.4f,"
                  "\"intersect_error_time\":%.4f}\n",
                  cfg.workload.c_str(),
                  static_cast<unsigned long long>(cfg.seed),
                  cfg.selectivity_error, wl_queries, wl_appendix / wl_queries,
                  wl_intersect / wl_queries);
    bench_lines += line;
  }
  if (queries == 0) {
    std::fprintf(stderr, "no queries executed\n");
    return 1;
  }

  const double n = static_cast<double>(queries);
  std::printf("\nupper-bound q-error UB/max(1,N_true) at the ~50%% "
              "snapshot:\n");
  std::printf("%-12s %10s %10s %12s %12s %12s\n", "engine", "nodes",
              "unbounded", "p50", "p90", "max");
  struct Row {
    const char* name;
    const QErrors* q;
  };
  for (const Row& r : {Row{"appendix_a", &q_appendix},
                       Row{"intersect", &q_intersect}}) {
    std::printf("%-12s %10zu %10lld %12.2f %12.2f %12.2f\n", r.name,
                r.q->all.size(), r.q->unbounded, Percentile(r.q->all, 0.5),
                Percentile(r.q->all, 0.9), Percentile(r.q->all, 1.0));
    std::printf("%-12s %10zu %10s %12.2f %12.2f %12.2f\n", "  joins only",
                r.q->joins.size(), "-", Percentile(r.q->joins, 0.5),
                Percentile(r.q->joins, 0.9), Percentile(r.q->joins, 1.0));
  }
  std::printf("\n%d queries: Error_time appendix=%.4f intersect=%.4f "
              "(Error_count %.4f / %.4f)\n",
              queries, time_appendix / n, time_intersect / n,
              count_appendix / n, count_intersect / n);
  std::printf("lp tightenings=%llu, intersection inversions=%llu "
              "(expected: 0)\n",
              static_cast<unsigned long long>(tightenings),
              static_cast<unsigned long long>(inversions));

  std::snprintf(line, sizeof(line),
                "BENCH {\"bench\":\"bounds_tightness\",\"workload\":\"all\","
                "\"queries\":%d,\"appendix_error_time\":%.4f,"
                "\"intersect_error_time\":%.4f,"
                "\"appendix_join_qerror_p50\":%.3f,"
                "\"intersect_join_qerror_p50\":%.3f,"
                "\"appendix_join_qerror_p90\":%.3f,"
                "\"intersect_join_qerror_p90\":%.3f,"
                "\"lp_tightenings\":%llu,\"intersection_inversions\":%llu}\n",
                queries, time_appendix / n, time_intersect / n,
                Percentile(q_appendix.joins, 0.5),
                Percentile(q_intersect.joins, 0.5),
                Percentile(q_appendix.joins, 0.9),
                Percentile(q_intersect.joins, 0.9),
                static_cast<unsigned long long>(tightenings),
                static_cast<unsigned long long>(inversions));
  bench_lines += line;
  std::fputs(bench_lines.c_str(), stdout);

  // Acceptance gates. The intersection may only help: inversions mean an
  // engine produced an unsound interval, and an Error_time regression means
  // a too-tight LpBound cap pulled the clamp away from the truth.
  if (inversions != 0) {
    std::fprintf(stderr, "GATE FAILED: %llu intersection inversions\n",
                 static_cast<unsigned long long>(inversions));
    return 1;
  }
  if (time_intersect > time_appendix + 1e-9) {
    std::fprintf(stderr,
                 "GATE FAILED: intersect Error_time %.4f > appendix-only "
                 "%.4f\n",
                 time_intersect / n, time_appendix / n);
    return 1;
  }
  std::printf("gate ok: no inversions, intersect Error_time <= appendix\n");
  return 0;
}
