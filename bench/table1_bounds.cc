// Reproduces Table 1 (Appendix A) empirically: per logical-operator bounding
// rule, measures how tight the online LB/UB envelope is around the true
// cardinality at mid-execution, and verifies soundness (zero violations)
// over every snapshot of the TPC-H workload.
//
// Expected shape: 0 violations; bounds tighten materially once upstream
// pipelines complete (the §4.2 "later pipelines" effect).
//
// Also profiles the bounds-engine pipeline: per engine (appendix_a,
// lp_bound, intersect), the absolute interval width (UB − LB) at the ~50%
// snapshot is bucketed on a log10 scale and emitted as a trailing
// "BENCH {...}" JSON line per engine (collected into BENCH_bounds.json),
// so width-distribution shifts between engines are tracked over time.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "lqs/bounds.h"
#include "lqs/pipeline.h"

int main() {
  using namespace lqs;        // NOLINT
  using namespace lqs::bench;  // NOLINT

  TpchOptions opt;
  opt.scale = BenchScale();
  auto w = MakeTpchWorkload(opt);
  if (!w.ok()) return 1;
  OptimizerOptions oo;
  oo.selectivity_error = kBenchSelectivityError;
  if (!AnnotateWorkload(&w.value(), oo).ok()) return 1;

  struct Cell {
    double rel_width_mid = 0;   // (UB-LB)/max(1,N_true) at ~50% time
    double rel_width_late = 0;  // same at ~90% time
    int instances = 0;
    int clamps = 0;  // snapshots where the optimizer estimate fell outside
  };
  std::map<OpType, Cell> table;
  long long checks = 0;
  long long violations = 0;

  // Width histogram per engine: bucket b counts nodes whose mid-snapshot
  // width (UB - LB) falls in [10^(b-1), 10^b) — bucket 0 is width < 1
  // (exact or near-exact), the last bucket is +infinity (spools, declined
  // LpBound subtrees).
  constexpr int kWidthBuckets = 10;  // <1, <10, ..., <1e8, >=1e8, inf
  const BoundsEngineKind kEngines[] = {BoundsEngineKind::kAppendixA,
                                       BoundsEngineKind::kLpBound,
                                       BoundsEngineKind::kIntersect};
  long long width_hist[3][kWidthBuckets + 1] = {};
  auto bucket_of = [](double width) {
    if (!std::isfinite(width)) return kWidthBuckets;
    int b = 0;
    for (double edge = 1.0; b < kWidthBuckets - 1 && width >= edge;
         edge *= 10.0) {
      ++b;
    }
    return width < 1.0 ? 0 : b;
  };

  ExecOptions exec;
  exec.snapshot_interval_ms = kBenchSnapshotIntervalMs;
  for (WorkloadQuery& q : w->queries) {
    auto run = ExecuteQuery(q.plan, w->catalog.get(), exec);
    if (!run.ok() || run->trace.snapshots.size() < 4) continue;
    const auto& snaps = run->trace.snapshots;
    const auto& fin = run->trace.final_snapshot;
    const ProfileSnapshot& mid = snaps[snaps.size() / 2];
    const ProfileSnapshot& late = snaps[snaps.size() * 9 / 10];
    CardinalityBounds b_mid = ComputeBounds(q.plan, *w->catalog, mid);
    CardinalityBounds b_late = ComputeBounds(q.plan, *w->catalog, late);
    const PlanAnalysis analysis = AnalyzePlan(q.plan, w->catalog.get());
    for (int e = 0; e < 3; ++e) {
      CardinalityBounds b, scratch;
      ComputeBoundsPipelineInto(kEngines[e], q.plan, *w->catalog, mid,
                                nullptr, analysis, nullptr, &b, &scratch,
                                nullptr);
      for (int i = 0; i < q.plan.size(); ++i) {
        width_hist[e][bucket_of(b.upper[i] - b.lower[i])]++;
      }
    }
    for (int i = 0; i < q.plan.size(); ++i) {
      const double n_true = static_cast<double>(fin.operators[i].row_count);
      Cell& cell = table[q.plan.node(i).type];
      auto rel = [&](const CardinalityBounds& b) {
        if (!std::isfinite(b.upper[i])) return 10.0;  // cap "unbounded"
        return std::min(10.0,
                        (b.upper[i] - b.lower[i]) / std::max(1.0, n_true));
      };
      cell.rel_width_mid += rel(b_mid);
      cell.rel_width_late += rel(b_late);
      cell.instances++;
      const double est = q.plan.node(i).est_rows;
      if (est < b_mid.lower[i] || est > b_mid.upper[i]) cell.clamps++;
    }
    // Soundness over every snapshot.
    for (const auto& snap : snaps) {
      CardinalityBounds b = ComputeBounds(q.plan, *w->catalog, snap);
      for (int i = 0; i < q.plan.size(); ++i) {
        const double n_true = static_cast<double>(fin.operators[i].row_count);
        checks++;
        if (b.lower[i] > n_true + 1e-9 || b.upper[i] < n_true - 1e-9) {
          violations++;
        }
      }
    }
  }

  std::printf("Table 1 (Appendix A): online cardinality bounds over TPC-H\n");
  std::printf("relative envelope width (UB-LB)/N_true, capped at 10 "
              "(inf for spools)\n\n");
  std::printf("%-30s %10s %12s %12s %14s\n", "operator", "instances",
              "width @50%", "width @90%", "est clamped");
  for (const auto& [type, cell] : table) {
    if (cell.instances == 0) continue;
    std::printf("%-30s %10d %12.3f %12.3f %13.1f%%\n", OpTypeName(type),
                cell.instances, cell.rel_width_mid / cell.instances,
                cell.rel_width_late / cell.instances,
                100.0 * cell.clamps / cell.instances);
  }
  std::printf("\nsoundness: %lld bound checks, %lld violations "
              "(expected: 0)\n",
              checks, violations);

  std::printf("\nmid-execution interval width (UB-LB) per bounds engine, "
              "log10 buckets:\n");
  std::printf("%-12s %6s", "engine", "<1");
  for (int b = 1; b < kWidthBuckets - 1; ++b) {
    std::printf(" %6s", ("<1e" + std::to_string(b)).c_str());
  }
  std::printf(" %6s %6s\n", ">=1e8", "inf");
  std::string bench_lines;
  for (int e = 0; e < 3; ++e) {
    std::printf("%-12s", BoundsEngineName(kEngines[e]));
    for (int b = 0; b <= kWidthBuckets; ++b) {
      std::printf(" %6lld", width_hist[e][b]);
    }
    std::printf("\n");
    std::string buckets;
    for (int b = 0; b <= kWidthBuckets; ++b) {
      buckets += (b ? "," : "") + std::to_string(width_hist[e][b]);
    }
    char line[512];
    std::snprintf(line, sizeof(line),
                  "BENCH {\"bench\":\"table1_bounds_width\",\"engine\":"
                  "\"%s\",\"log10_buckets\":[%s],\"violations\":%lld}\n",
                  BoundsEngineName(kEngines[e]), buckets.c_str(),
                  violations);
    bench_lines += line;
  }
  std::fputs(bench_lines.c_str(), stdout);
  return violations == 0 ? 0 : 1;
}
