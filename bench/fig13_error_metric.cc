// Reproduces Figure 13: what a 0.1 difference in the §5 error metric looks
// like — two progress estimators on the same query, one tracking the true
// progress closely and one deviating, with their measured errors printed.
// The paper uses this to argue that even 0.05-0.1 improvements are
// significant in practice.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "lqs/metrics.h"

int main() {
  using namespace lqs;        // NOLINT
  using namespace lqs::bench;  // NOLINT

  TpcdsOptions opt;
  opt.scale = BenchScale();
  auto w = MakeTpcdsWorkload(opt);
  if (!w.ok()) return 1;
  OptimizerOptions oo;
  oo.selectivity_error = 2.0;  // pronounced misestimation for the contrast
  if (!AnnotateWorkload(&w.value(), oo).ok()) return 1;

  // Pick the query whose LQS-vs-TGN Error_count gap is closest to the 0.1
  // the paper illustrates (Fig. 13 is a metric-sensitivity illustration).
  EstimatorConfig good{"Estimator 1 (LQS)", EstimatorOptions::Lqs()};
  EstimatorConfig bad{"Estimator 2 (TGN)", EstimatorOptions::TotalGetNext()};

  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  WorkloadQuery* query = nullptr;
  StatusOr<ExecutionResult> result = Status::NotFound("no query");
  double best_gap_delta = 1e9;
  for (auto& q : w->queries) {
    auto run = ExecuteQuery(q.plan, w->catalog.get(), exec);
    if (!run.ok() || run->trace.snapshots.size() < 10) continue;
    double e1 =
        EvaluateQuery(q.plan, *w->catalog, run->trace, good.options)
            .error_count;
    double e2 =
        EvaluateQuery(q.plan, *w->catalog, run->trace, bad.options)
            .error_count;
    double delta = std::abs(std::abs(e1 - e2) - 0.1);
    if (delta < best_gap_delta) {
      best_gap_delta = delta;
      query = &q;
      result = std::move(run);
    }
  }
  if (query == nullptr || !result.ok()) return 1;
  std::printf("selected query: %s\n", query->name.c_str());

  auto c1 = ProgressCurve(query->plan, *w->catalog, result->trace,
                          good.options);
  auto c2 = ProgressCurve(query->plan, *w->catalog, result->trace,
                          bad.options);

  std::printf("Figure 13: two progress estimators on the same query\n\n");
  std::printf("%12s %18s %18s %14s\n", "time frac", good.name.c_str(),
              bad.name.c_str(), "True (count)");
  std::vector<double> v1;
  std::vector<double> v2;
  std::vector<double> vt;
  double e1 = 0;
  double e2 = 0;
  const size_t stride = std::max<size_t>(1, c1.size() / 24);
  for (size_t i = 0; i < c1.size(); ++i) {
    v1.push_back(c1[i].estimated);
    v2.push_back(c2[i].estimated);
    vt.push_back(c1[i].true_count);
    e1 += std::abs(c1[i].estimated - c1[i].true_count);
    e2 += std::abs(c2[i].estimated - c2[i].true_count);
    if (i % stride == 0) {
      std::printf("%12.3f %18.3f %18.3f %14.3f\n", c1[i].time_fraction,
                  c1[i].estimated, c2[i].estimated, c1[i].true_count);
    }
  }
  if (!c1.empty()) {
    std::printf("\n  estimator 1 |%s|\n", RenderCurve(v1).c_str());
    std::printf("  estimator 2 |%s|\n", RenderCurve(v2).c_str());
    std::printf("  true        |%s|\n", RenderCurve(vt).c_str());
    std::printf("\nError_count(estimator 1) = %.4f\n", e1 / c1.size());
    std::printf("Error_count(estimator 2) = %.4f\n", e2 / c1.size());
    std::printf("difference = %.4f (the paper illustrates how a ~0.1 gap "
                "looks)\n",
                std::abs(e1 - e2) / c1.size());
  }
  return 0;
}
