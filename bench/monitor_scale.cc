// Monitor-subsystem scale benchmark, two modes.
//
// Default mode: ≥64 staggered TPC-DS / TPC-H sessions replayed through one
// MonitorService, measuring per-tick latency and report throughput, and
// *proving* the determinism contract: the rendered monitor output of a
// 1-thread run and an N-thread run are compared byte-for-byte on every
// invocation.
//
//   $ ./build/bench/monitor_scale [--threads=N] [--sessions=N]
//
// Sharded mode (the fleet-scale numbers behind BENCH_monitor_scale.json):
// sessions become *remote* loopback sessions — every snapshot crosses the
// wire format — spread across a ShardedMonitor, comparing the full-snapshot
// transport against the delta transport at the identical poll rate.
//
//   $ ./build/bench/monitor_scale --shards=4 --transport=delta --sessions=1000
//   $ ./build/bench/monitor_scale --sweep    # 1k/4k/10k, full vs delta,
//                                            # plus a 10k backpressure run
//
// The sweep gates (non-zero exit) on the acceptance criteria: every run
// completes with per-session progress monotone (within the checkers' 0.01
// revision slack), and the delta transport saves at least 3x steady-state
// bytes/session/sec at every fleet size. --budget-ms=X enables admission
// control (see ShardedMonitorOptions::shard_tick_budget_ms).
//
// Environment: LQS_MONITOR_THREADS overrides --threads (0 = hardware).
// All monitor lines in default mode are deterministic; the trailing
// "BENCH {...}" JSON lines carry the wall-clock measurements and are the
// only nondeterministic output:
//
//   $ diff <(./monitor_scale --threads=1 | grep -v '^BENCH') \
//          <(./monitor_scale --threads=8 | grep -v '^BENCH')

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stringf.h"
#include "exec/executor.h"
#include "monitor/monitor_service.h"
#include "monitor/sharded_monitor.h"
#include "remote/endpoint.h"
#include "workload/workload.h"

using namespace lqs;         // NOLINT: bench code
using namespace lqs::bench;  // NOLINT

namespace {

struct Executed {
  const WorkloadQuery* query;
  const Catalog* catalog;
  ExecutionResult result;
};

/// One deterministic line per tick: shared-timeline time, state counts, and
/// progress of every session in registration order (3 decimal places — the
/// exact doubles are identical across thread counts, this just keeps lines
/// readable). This is the string compared across thread counts.
std::string RenderTimeline(MonitorService* monitor) {
  std::string out;
  monitor->RunToCompletion(
      [&out](double t, const std::vector<SessionStatus>& statuses) {
        size_t active = 0, waiting = 0, done = 0;
        std::string row;
        for (const SessionStatus& s : statuses) {
          switch (s.state) {
            case SessionState::kWaiting: ++waiting; row += "  ----"; break;
            case SessionState::kDone:    ++done;    row += "  done"; break;
            case SessionState::kRunning:
              ++active;
              row += StringF(" %5.3f", s.progress);
              break;
          }
        }
        out += StringF("t=%7.1f active=%2zu waiting=%2zu done=%2zu |%s\n", t,
                       active, waiting, done, row.c_str());
      });
  return out;
}

/// One sharded fleet run: `num_sessions` remote loopback sessions over the
/// full or delta transport, polled at the shared kBenchSnapshotIntervalMs
/// tick. Reports whether everyone finished and whether per-session progress
/// stayed monotone within the 0.01 revision slack the invariant checkers
/// use (§5: corrections are revisions, regressions are bugs).
struct ShardedRun {
  MonitorStats stats;
  std::vector<MonitorStats> shard_stats;
  double horizon_ms = 0;
  size_t sessions = 0;
  int shards = 0;
  bool all_done = false;
  bool monotone = true;
  int max_poll_divisor = 1;

  double BytesPerSessionSec() const {
    if (sessions == 0 || horizon_ms <= 0) return 0;
    return static_cast<double>(stats.transport_bytes) /
           static_cast<double>(sessions) / (horizon_ms / 1000.0);
  }
};

ShardedRun RunSharded(const std::vector<Executed>& executed,
                      size_t num_sessions, int shards, bool serve_deltas,
                      double budget_ms, int threads) {
  ShardedMonitorOptions options;
  options.num_shards = shards;
  options.shard_options.num_threads = threads;
  options.shard_options.tick_ms = kBenchSnapshotIntervalMs;
  options.shard_tick_budget_ms = budget_ms;
  ShardedMonitor monitor(options);

  PollingClientOptions client_options;
  client_options.max_attempts = 2;
  LoopbackOptions loopback;
  loopback.serve_deltas = serve_deltas;
  double offset = 0;
  for (size_t i = 0; i < num_sessions; ++i) {
    const Executed& e = executed[i % executed.size()];
    // Stagger arrivals inside a bounded window so the fleet reaches a
    // steady state with most sessions mid-flight (an unbounded stagger
    // would make the horizon scale with the fleet and leave almost every
    // session idle on any given tick).
    offset = static_cast<double>(i % 64) * kBenchSnapshotIntervalMs;
    monitor.RegisterRemoteSession(
        StringF("s%05zu:%s", i, e.query->name.c_str()), &e.query->plan,
        e.catalog,
        std::make_unique<LoopbackEndpoint>(&e.result.trace, loopback), offset,
        client_options);
  }

  ShardedRun run;
  run.sessions = num_sessions;
  run.shards = monitor.num_shards();
  run.horizon_ms = monitor.HorizonMs();
  monitor.RunToCompletion(
      [&](double, const std::vector<SessionStatus>& statuses) {
        (void)statuses;
        for (int s = 0; s < monitor.num_shards(); ++s) {
          run.max_poll_divisor =
              std::max(run.max_poll_divisor, monitor.poll_divisor(s));
        }
      });
  run.all_done = monitor.AllSessionsDone();
  // "Monotone" with the checkers' §5 semantics: every session is wrapped in
  // an always-on ProgressInvariantChecker, which reports any per-tick
  // progress drop beyond the 0.01 slack that is NOT explained by a
  // cardinality revision (revisions are legitimate; regressions are bugs).
  // A clean FinalCheck means every session's rendered progress held that
  // invariant on every computed tick.
  ValidationReport invariants = monitor.FinalCheck();
  run.monotone = invariants.ok();
  if (!invariants.ok()) {
    std::fprintf(stderr, "%s", invariants.ToString().c_str());
  }
  run.stats = monitor.stats();
  run.shard_stats = monitor.shard_stats();
  return run;
}

void PrintShardedBenchLine(const ShardedRun& run, const char* transport,
                           double budget_ms) {
  std::string shard_rates;
  for (const MonitorStats& s : run.shard_stats) {
    if (!shard_rates.empty()) shard_rates += ',';
    shard_rates += StringF("%.0f", s.reports_per_sec);
  }
  std::printf(
      "BENCH {\"bench\":\"monitor_scale\",\"mode\":\"sharded\","
      "\"sessions\":%zu,\"shards\":%d,\"transport\":\"%s\","
      "\"budget_ms\":%.3f,\"ticks\":%llu,\"reports\":%llu,"
      "\"reports_per_sec\":%.0f,\"shard_reports_per_sec\":[%s],"
      "\"transport_bytes\":%llu,\"bytes_per_session_sec\":%.1f,"
      "\"deltas_applied\":%llu,\"delta_resyncs\":%llu,"
      "\"stale_reports\":%llu,\"max_poll_divisor\":%d,"
      "\"all_done\":%s,\"monotone\":%s}\n",
      run.sessions, run.shards, transport, budget_ms,
      static_cast<unsigned long long>(run.stats.ticks),
      static_cast<unsigned long long>(run.stats.reports_computed),
      run.stats.reports_per_sec, shard_rates.c_str(),
      static_cast<unsigned long long>(run.stats.transport_bytes),
      run.BytesPerSessionSec(),
      static_cast<unsigned long long>(run.stats.deltas_applied),
      static_cast<unsigned long long>(run.stats.delta_resyncs),
      static_cast<unsigned long long>(run.stats.stale_reports),
      run.max_poll_divisor, run.all_done ? "true" : "false",
      run.monotone ? "true" : "false");
}

/// Checks one run against the sweep's hard acceptance criteria.
bool RunHealthy(const ShardedRun& run, const char* label) {
  bool ok = true;
  if (!run.all_done) {
    std::fprintf(stderr, "FAIL: %s: a session wedged (not all done)\n",
                 label);
    ok = false;
  }
  if (!run.monotone) {
    std::fprintf(stderr, "FAIL: %s: per-session progress regressed\n",
                 label);
    ok = false;
  }
  return ok;
}

int RunSweep(const std::vector<Executed>& executed, int shards, int threads) {
  bool ok = true;
  for (size_t sessions : {size_t{1000}, size_t{4000}, size_t{10000}}) {
    ShardedRun full = RunSharded(executed, sessions, shards,
                                 /*serve_deltas=*/false, /*budget_ms=*/0,
                                 threads);
    PrintShardedBenchLine(full, "full", 0);
    ok = RunHealthy(full, "full transport") && ok;

    ShardedRun delta = RunSharded(executed, sessions, shards,
                                  /*serve_deltas=*/true, /*budget_ms=*/0,
                                  threads);
    PrintShardedBenchLine(delta, "delta", 0);
    ok = RunHealthy(delta, "delta transport") && ok;

    const double reduction =
        delta.BytesPerSessionSec() > 0
            ? full.BytesPerSessionSec() / delta.BytesPerSessionSec()
            : 0;
    std::printf(
        "BENCH {\"bench\":\"monitor_scale_delta_reduction\","
        "\"sessions\":%zu,\"shards\":%d,"
        "\"full_bytes_per_session_sec\":%.1f,"
        "\"delta_bytes_per_session_sec\":%.1f,\"reduction\":%.2f}\n",
        sessions, shards, full.BytesPerSessionSec(),
        delta.BytesPerSessionSec(), reduction);
    if (reduction < 3.0) {
      std::fprintf(stderr,
                   "FAIL: %zu sessions: delta transport reduction %.2fx is "
                   "below the required 3x\n",
                   sessions, reduction);
      ok = false;
    }
  }

  // The survival run: 10k sessions under an admission budget no shard can
  // meet, so the poll divisors ride the cap — sessions must degrade to
  // stale held views, never wedge, and still finish monotone.
  ShardedRun stress = RunSharded(executed, 10000, shards,
                                 /*serve_deltas=*/true, /*budget_ms=*/0.01,
                                 threads);
  PrintShardedBenchLine(stress, "delta", 0.01);
  ok = RunHealthy(stress, "backpressure stress") && ok;
  if (stress.max_poll_divisor <= 1) {
    std::fprintf(stderr,
                 "FAIL: stress budget never engaged admission control\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 0;  // hardware default
  size_t num_sessions = 64;
  int shards = 0;  // 0 = single-service default mode
  bool sweep = false;
  bool serve_deltas = false;
  double budget_ms = 0;
  if (const char* env = std::getenv("LQS_MONITOR_THREADS")) {
    threads = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--sessions=", 11) == 0) {
      num_sessions = static_cast<size_t>(std::atoll(argv[i] + 11));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      serve_deltas = std::strcmp(argv[i] + 12, "delta") == 0;
    } else if (std::strncmp(argv[i], "--budget-ms=", 12) == 0) {
      budget_ms = std::atof(argv[i] + 12);
    }
  }

  // Build and execute the distinct queries once; the monitor then replays
  // the traces as many concurrent sessions (the same query text run by many
  // users — which is exactly what the estimator cache exploits).
  TpcdsOptions ds;
  ds.scale = 0.2;
  auto wds = MakeTpcdsWorkload(ds);
  TpchOptions h;
  h.scale = 0.2;
  auto wh = MakeTpchWorkload(h);
  if (!wds.ok() || !wh.ok()) {
    std::fprintf(stderr, "workload construction failed\n");
    return 1;
  }
  OptimizerOptions oo;
  oo.selectivity_error = kBenchSelectivityError;
  if (!AnnotateWorkload(&wds.value(), oo).ok() ||
      !AnnotateWorkload(&wh.value(), oo).ok()) {
    return 1;
  }
  ExecOptions exec;
  exec.snapshot_interval_ms = kBenchSnapshotIntervalMs;
  std::vector<Executed> executed;
  for (Workload* w : {&wds.value(), &wh.value()}) {
    for (const WorkloadQuery& q : w->queries) {
      auto result = ExecuteQuery(q.plan, w->catalog.get(), exec);
      if (!result.ok()) continue;  // a failed query is not monitorable
      executed.push_back(
          Executed{&q, w->catalog.get(), std::move(result).value()});
    }
  }
  if (executed.empty()) {
    std::fprintf(stderr, "no queries executed\n");
    return 1;
  }

  if (sweep) return RunSweep(executed, shards > 0 ? shards : 4, threads);
  if (shards > 0) {
    ShardedRun run = RunSharded(executed, num_sessions, shards, serve_deltas,
                                budget_ms, threads);
    PrintShardedBenchLine(run, serve_deltas ? "delta" : "full", budget_ms);
    return RunHealthy(run, "sharded run") ? 0 : 1;
  }

  // Register `num_sessions` sessions cycling through the executed traces,
  // arrivals staggered so the monitor sees waiting, active and finished
  // sessions on the same tick.
  auto populate = [&](MonitorService* monitor) {
    double offset = 0;
    for (size_t i = 0; i < num_sessions; ++i) {
      const Executed& e = executed[i % executed.size()];
      monitor->RegisterSession(StringF("s%03zu:%s", i, e.query->name.c_str()),
                               &e.query->plan, e.catalog, &e.result.trace,
                               offset);
      offset += 11.0;
    }
  };

  MonitorOptions serial_opt;
  serial_opt.num_threads = 1;
  serial_opt.ticks_per_horizon = 24;
  MonitorOptions parallel_opt = serial_opt;
  parallel_opt.num_threads = threads;

  // Reference serial run, then the measured parallel run; the rendered
  // timelines must match byte-for-byte (the determinism contract).
  MonitorService serial(serial_opt);
  populate(&serial);
  const std::string serial_render = RenderTimeline(&serial);

  MonitorService parallel(parallel_opt);
  populate(&parallel);
  const std::string parallel_render = RenderTimeline(&parallel);

  const bool deterministic = serial_render == parallel_render;
  std::fputs(parallel_render.c_str(), stdout);

  ValidationReport invariants = parallel.FinalCheck();
  if (!invariants.ok()) {
    std::fprintf(stderr, "%s", invariants.ToString().c_str());
    return 1;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: 1-thread and %d-thread renders differ (%zu vs %zu "
                 "bytes)\n",
                 parallel.stats().num_threads, serial_render.size(),
                 parallel_render.size());
    return 1;
  }

  const MonitorStats stats = parallel.stats();
  std::printf(
      "BENCH {\"bench\":\"monitor_scale\",\"sessions\":%zu,"
      "\"distinct_queries\":%zu,\"estimators_cached\":%zu,\"threads\":%d,"
      "\"ticks\":%llu,\"reports\":%llu,\"reports_per_sec\":%.0f,"
      "\"p50_estimate_ms\":%.4f,\"p95_estimate_ms\":%.4f,"
      "\"p50_tick_ms\":%.4f,\"p95_tick_ms\":%.4f,\"deterministic\":%s}\n",
      stats.sessions, executed.size(), stats.estimators_cached,
      stats.num_threads, static_cast<unsigned long long>(stats.ticks),
      static_cast<unsigned long long>(stats.reports_computed),
      stats.reports_per_sec, stats.p50_estimate_latency_ms,
      stats.p95_estimate_latency_ms, stats.p50_tick_latency_ms,
      stats.p95_tick_latency_ms, deterministic ? "true" : "false");
  return 0;
}
