// Monitor-subsystem scale benchmark: ≥64 staggered TPC-DS / TPC-H sessions
// replayed through one MonitorService, measuring per-tick latency and
// report throughput, and *proving* the determinism contract: the rendered
// monitor output of a 1-thread run and an N-thread run are compared
// byte-for-byte on every invocation.
//
//   $ ./build/bench/monitor_scale [--threads=N] [--sessions=N]
//
// Environment: LQS_MONITOR_THREADS overrides --threads (0 = hardware).
// All monitor lines are deterministic; the trailing "BENCH {...}" JSON line
// carries the wall-clock measurements (reports/sec, p50/p95 latencies) and
// is the only nondeterministic output:
//
//   $ diff <(./monitor_scale --threads=1 | grep -v '^BENCH') \
//          <(./monitor_scale --threads=8 | grep -v '^BENCH')

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stringf.h"
#include "exec/executor.h"
#include "monitor/monitor_service.h"
#include "workload/workload.h"

using namespace lqs;         // NOLINT: bench code
using namespace lqs::bench;  // NOLINT

namespace {

struct Executed {
  const WorkloadQuery* query;
  const Catalog* catalog;
  ExecutionResult result;
};

/// One deterministic line per tick: shared-timeline time, state counts, and
/// progress of every session in registration order (3 decimal places — the
/// exact doubles are identical across thread counts, this just keeps lines
/// readable). This is the string compared across thread counts.
std::string RenderTimeline(MonitorService* monitor) {
  std::string out;
  monitor->RunToCompletion(
      [&out](double t, const std::vector<SessionStatus>& statuses) {
        size_t active = 0, waiting = 0, done = 0;
        std::string row;
        for (const SessionStatus& s : statuses) {
          switch (s.state) {
            case SessionState::kWaiting: ++waiting; row += "  ----"; break;
            case SessionState::kDone:    ++done;    row += "  done"; break;
            case SessionState::kRunning:
              ++active;
              row += StringF(" %5.3f", s.progress);
              break;
          }
        }
        out += StringF("t=%7.1f active=%2zu waiting=%2zu done=%2zu |%s\n", t,
                       active, waiting, done, row.c_str());
      });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 0;  // hardware default
  size_t num_sessions = 64;
  if (const char* env = std::getenv("LQS_MONITOR_THREADS")) {
    threads = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--sessions=", 11) == 0) {
      num_sessions = static_cast<size_t>(std::atoll(argv[i] + 11));
    }
  }

  // Build and execute the distinct queries once; the monitor then replays
  // the traces as many concurrent sessions (the same query text run by many
  // users — which is exactly what the estimator cache exploits).
  TpcdsOptions ds;
  ds.scale = 0.2;
  auto wds = MakeTpcdsWorkload(ds);
  TpchOptions h;
  h.scale = 0.2;
  auto wh = MakeTpchWorkload(h);
  if (!wds.ok() || !wh.ok()) {
    std::fprintf(stderr, "workload construction failed\n");
    return 1;
  }
  OptimizerOptions oo;
  oo.selectivity_error = kBenchSelectivityError;
  if (!AnnotateWorkload(&wds.value(), oo).ok() ||
      !AnnotateWorkload(&wh.value(), oo).ok()) {
    return 1;
  }
  ExecOptions exec;
  exec.snapshot_interval_ms = kBenchSnapshotIntervalMs;
  std::vector<Executed> executed;
  for (Workload* w : {&wds.value(), &wh.value()}) {
    for (const WorkloadQuery& q : w->queries) {
      auto result = ExecuteQuery(q.plan, w->catalog.get(), exec);
      if (!result.ok()) continue;  // a failed query is not monitorable
      executed.push_back(
          Executed{&q, w->catalog.get(), std::move(result).value()});
    }
  }
  if (executed.empty()) {
    std::fprintf(stderr, "no queries executed\n");
    return 1;
  }

  // Register `num_sessions` sessions cycling through the executed traces,
  // arrivals staggered so the monitor sees waiting, active and finished
  // sessions on the same tick.
  auto populate = [&](MonitorService* monitor) {
    double offset = 0;
    for (size_t i = 0; i < num_sessions; ++i) {
      const Executed& e = executed[i % executed.size()];
      monitor->RegisterSession(StringF("s%03zu:%s", i, e.query->name.c_str()),
                               &e.query->plan, e.catalog, &e.result.trace,
                               offset);
      offset += 11.0;
    }
  };

  MonitorOptions serial_opt;
  serial_opt.num_threads = 1;
  serial_opt.ticks_per_horizon = 24;
  MonitorOptions parallel_opt = serial_opt;
  parallel_opt.num_threads = threads;

  // Reference serial run, then the measured parallel run; the rendered
  // timelines must match byte-for-byte (the determinism contract).
  MonitorService serial(serial_opt);
  populate(&serial);
  const std::string serial_render = RenderTimeline(&serial);

  MonitorService parallel(parallel_opt);
  populate(&parallel);
  const std::string parallel_render = RenderTimeline(&parallel);

  const bool deterministic = serial_render == parallel_render;
  std::fputs(parallel_render.c_str(), stdout);

  ValidationReport invariants = parallel.FinalCheck();
  if (!invariants.ok()) {
    std::fprintf(stderr, "%s", invariants.ToString().c_str());
    return 1;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: 1-thread and %d-thread renders differ (%zu vs %zu "
                 "bytes)\n",
                 parallel.stats().num_threads, serial_render.size(),
                 parallel_render.size());
    return 1;
  }

  const MonitorStats stats = parallel.stats();
  std::printf(
      "BENCH {\"bench\":\"monitor_scale\",\"sessions\":%zu,"
      "\"distinct_queries\":%zu,\"estimators_cached\":%zu,\"threads\":%d,"
      "\"ticks\":%llu,\"reports\":%llu,\"reports_per_sec\":%.0f,"
      "\"p50_estimate_ms\":%.4f,\"p95_estimate_ms\":%.4f,"
      "\"p50_tick_ms\":%.4f,\"p95_tick_ms\":%.4f,\"deterministic\":%s}\n",
      stats.sessions, executed.size(), stats.estimators_cached,
      stats.num_threads, static_cast<unsigned long long>(stats.ticks),
      static_cast<unsigned long long>(stats.reports_computed),
      stats.reports_per_sec, stats.p50_estimate_latency_ms,
      stats.p95_estimate_latency_ms, stats.p50_tick_latency_ms,
      stats.p95_tick_latency_ms, deterministic ? "true" : "false");
  return 0;
}
