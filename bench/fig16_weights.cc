// Reproduces Figure 16: Error_time of the overall query progress with and
// without the §4.6 operator/pipeline weights, across the five workloads.
// An extra ablation column restricts the weighted aggregate to the critical
// path (§4.6 / DESIGN.md §5).
//
// Expected shape (paper, Fig. 16): weighting reduces Error_time on every
// workload.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace lqs;        // NOLINT
  using namespace lqs::bench;  // NOLINT

  EstimatorOptions weighted = EstimatorOptions::Lqs();
  EstimatorOptions unweighted = EstimatorOptions::Lqs();
  unweighted.use_weights = false;
  EstimatorOptions critical = EstimatorOptions::Lqs();
  critical.critical_path_only = true;
  // §7(a) extension: weights re-evaluated with refined cardinalities
  // propagated across pipeline boundaries.
  EstimatorOptions propagated = EstimatorOptions::Lqs();
  propagated.propagate_refinement = true;

  std::vector<EstimatorConfig> configs;
  configs.push_back({"With Weight", weighted});
  configs.push_back({"Without Weight", unweighted});
  configs.push_back({"(ablation) crit-path", critical});
  configs.push_back({"(ext) +propagation", propagated});

  std::printf("Figure 16: effect of operator weights on Error_time\n");
  std::printf("bench scale = %.2f\n", BenchScale());
  auto workloads = MakeAllWorkloads();
  std::vector<WorkloadResult> results;
  for (Workload& w : workloads) {
    std::printf("running %s (%zu queries)...\n", w.name.c_str(),
                w.queries.size());
    results.push_back(EvaluateWorkload(w, configs));
  }
  PrintErrorTable("=== Figure 16 (Error_time per workload) ===", "Error_time",
                  results, configs, /*use_time_metric=*/true);
  return 0;
}
