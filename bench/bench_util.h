#ifndef LQS_BENCH_BENCH_UTIL_H_
#define LQS_BENCH_BENCH_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "lqs/estimator.h"
#include "lqs/metrics.h"
#include "workload/workload.h"

namespace lqs {
namespace bench {

/// Scale knob for the experiment suite, settable via the LQS_BENCH_SCALE
/// environment variable (default 0.5). 1.0 matches the unit-scale generators
/// (lineitem ~60k rows); the paper's 100 GB datasets are emulated at laptop
/// scale per DESIGN.md §2.
double BenchScale();

/// Snapshot interval used in experiments. The paper polls every 500 ms over
/// minutes-long queries (hundreds of observations per query); at our virtual
/// scale 5 ms yields a comparable observation density.
inline constexpr double kBenchSnapshotIntervalMs = 5.0;

/// Optimizer-error amplification applied in experiments, emulating the stale
/// statistics / complex predicates that make the paper's cardinality
/// estimates err (§3.3).
inline constexpr double kBenchSelectivityError = 1.2;

/// Builds the five §5 workloads (TPC-H skewed, TPC-DS, REAL-1/2/3) at bench
/// scale, annotated. Order matches the paper's figures (REAL-3, REAL-2,
/// REAL-1, TPC-DS, TPC-H).
std::vector<Workload> MakeAllWorkloads();

/// A named estimator configuration column.
struct EstimatorConfig {
  std::string name;
  EstimatorOptions options;
};

/// Aggregated errors of one workload under several configurations.
struct WorkloadResult {
  std::string workload;
  int queries = 0;
  std::vector<double> error_count;  ///< parallel to configs
  std::vector<double> error_time;
  /// Per (config, operator type): summed error and instance count.
  std::vector<std::map<OpType, std::pair<double, int>>> op_count_error;
  std::vector<std::map<OpType, std::pair<double, int>>> op_time_error;
};

/// Executes every query of `workload` once and evaluates each configuration
/// on the shared traces.
WorkloadResult EvaluateWorkload(Workload& workload,
                                const std::vector<EstimatorConfig>& configs);

/// Prints an aligned table: rows = workloads, columns = configs.
void PrintErrorTable(const std::string& title, const std::string& metric,
                     const std::vector<WorkloadResult>& results,
                     const std::vector<EstimatorConfig>& configs,
                     bool use_time_metric);

/// Prints per-operator-type error rows aggregated across `results`.
void PrintPerOperatorTable(const std::string& title,
                           const std::vector<WorkloadResult>& results,
                           const std::vector<EstimatorConfig>& configs,
                           bool use_time_metric);

/// ASCII sparkline of a progress curve (for figure-style benches).
std::string RenderCurve(const std::vector<double>& values, int width = 60);

}  // namespace bench
}  // namespace lqs

#endif  // LQS_BENCH_BENCH_UTIL_H_
