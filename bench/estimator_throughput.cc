// Estimator-throughput benchmark: fresh-allocation vs workspace-reusing
// estimation over whole recorded traces, at 1 / 8 / 64 concurrent sessions,
// on TPC-H + TPC-DS plans under all four §5 presets.
//
// Both modes run in one invocation over the identical snapshot schedule:
//
//  - "fresh": ProgressEstimator with incremental=false, one Estimate() per
//    snapshot — the paper's stateless §2.2 client, which reallocates every
//    intermediate vector and re-derives every snapshot-independent quantity
//    (catalog lookups, Appendix A coefficients, §4.6 weight terms) per poll.
//  - "reuse": incremental=true estimators, one Workspace per session,
//    EstimateInto() — the zero-allocation engine with hoisted plan analysis
//    and finished-operator short-circuits.
//
// Reports are bit-identical across the two modes (also enforced by
// tests/estimator_workspace_test.cc); this bench cross-checks
// query_progress on every single estimate and fails on any mismatch.
//
//   $ ./build/bench/estimator_throughput
//
// All non-"BENCH " lines are deterministic; the trailing "BENCH {...}" JSON
// lines carry the wall-clock measurements (estimates/sec per cell, overall
// speedup, and a monitor-layer reports/sec pair).

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stringf.h"
#include "exec/executor.h"
#include "lqs/estimator.h"
#include "monitor/monitor_service.h"
#include "workload/workload.h"

using namespace lqs;         // NOLINT: bench code
using namespace lqs::bench;  // NOLINT

namespace {

struct Executed {
  const WorkloadQuery* query;
  const Catalog* catalog;
  ExecutionResult result;
};

double NowWallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One registered replay session: a trace plus its estimation state.
struct ReplaySession {
  const Executed* executed = nullptr;
  const ProgressEstimator* estimator = nullptr;
  ProgressEstimator::Workspace workspace;
  ProgressReport report;
};

struct CellResult {
  uint64_t estimates = 0;
  double wall_ms = 0;
  double progress_sum = 0;  ///< Σ query_progress — deterministic checksum
  uint64_t alpha_freezes = 0;
  uint64_t weight_cache_hits = 0;
};

/// How many times each cell replays its full snapshot schedule: the
/// 1-session cells cover only a few dozen estimates per pass, far too few
/// for a stable wall-clock read. Reps keep the schedule identical across
/// the two modes, so the progress-sum cross-check still holds exactly.
constexpr int kReps = 5;

/// Replays every session's full trace, interleaved round-robin across
/// sessions the way a monitor tick would, in one of the two modes.
CellResult RunCell(std::vector<ReplaySession>* sessions, bool reuse) {
  CellResult cell;
  size_t max_len = 0;
  for (const ReplaySession& s : *sessions) {
    max_len = std::max(max_len, s.executed->result.trace.snapshots.size());
  }
  const double start = NowWallMs();
  for (int rep = 0; rep < kReps; ++rep) {
    for (size_t t = 0; t < max_len; ++t) {
      for (ReplaySession& s : *sessions) {
        const auto& snaps = s.executed->result.trace.snapshots;
        if (t >= snaps.size()) continue;
        if (reuse) {
          s.estimator->EstimateInto(snaps[t], &s.workspace, &s.report);
        } else {
          s.report = s.estimator->Estimate(snaps[t]);
        }
        cell.progress_sum += s.report.query_progress;
        ++cell.estimates;
      }
    }
  }
  cell.wall_ms = NowWallMs() - start;
  for (const ReplaySession& s : *sessions) {
    cell.alpha_freezes += s.workspace.stats.alpha_freezes;
    cell.weight_cache_hits += s.workspace.stats.weight_cache_hits;
  }
  return cell;
}

}  // namespace

int main() {
  TpcdsOptions ds;
  ds.scale = 0.2;
  auto wds = MakeTpcdsWorkload(ds);
  TpchOptions h;
  h.scale = 0.2;
  auto wh = MakeTpchWorkload(h);
  if (!wds.ok() || !wh.ok()) {
    std::fprintf(stderr, "workload construction failed\n");
    return 1;
  }
  OptimizerOptions oo;
  oo.selectivity_error = kBenchSelectivityError;
  if (!AnnotateWorkload(&wds.value(), oo).ok() ||
      !AnnotateWorkload(&wh.value(), oo).ok()) {
    return 1;
  }
  ExecOptions exec;
  exec.snapshot_interval_ms = kBenchSnapshotIntervalMs;
  std::vector<Executed> executed;
  for (Workload* w : {&wds.value(), &wh.value()}) {
    for (const WorkloadQuery& q : w->queries) {
      auto result = ExecuteQuery(q.plan, w->catalog.get(), exec);
      if (!result.ok()) continue;
      executed.push_back(
          Executed{&q, w->catalog.get(), std::move(result).value()});
    }
  }
  if (executed.empty()) {
    std::fprintf(stderr, "no queries executed\n");
    return 1;
  }

  // The shared preset registry keeps the bench's configuration list and
  // output labels in lockstep with the estimator (and the ensemble's
  // candidate pool).
  std::vector<EstimatorConfig> presets;
  for (int i = 0; i < EstimatorOptions::kPresetCount; ++i) {
    presets.push_back({EstimatorOptions::PresetName(i),
                       EstimatorOptions::PresetByIndex(i)});
  }
  const std::vector<size_t> session_counts = {1, 8, 64};

  // Estimators cached per (plan, mode) within a preset, like the monitor's
  // cache: many sessions of the same query share one const estimator, each
  // owning its workspace.
  double total_fresh_ms = 0;
  double total_reuse_ms = 0;
  uint64_t mismatched_cells = 0;
  std::string bench_lines;
  for (const EstimatorConfig& preset : presets) {
    for (size_t num_sessions : session_counts) {
      EstimatorOptions fresh_options = preset.options;
      fresh_options.incremental = false;
      EstimatorOptions reuse_options = preset.options;
      reuse_options.incremental = true;
      std::map<const Plan*, std::unique_ptr<ProgressEstimator>> fresh_cache;
      std::map<const Plan*, std::unique_ptr<ProgressEstimator>> reuse_cache;
      std::vector<ReplaySession> fresh_sessions(num_sessions);
      std::vector<ReplaySession> reuse_sessions(num_sessions);
      for (size_t i = 0; i < num_sessions; ++i) {
        const Executed& e = executed[i % executed.size()];
        auto& fresh = fresh_cache[&e.query->plan];
        if (fresh == nullptr) {
          fresh = std::make_unique<ProgressEstimator>(
              &e.query->plan, e.catalog, fresh_options);
        }
        auto& reused = reuse_cache[&e.query->plan];
        if (reused == nullptr) {
          reused = std::make_unique<ProgressEstimator>(
              &e.query->plan, e.catalog, reuse_options);
        }
        fresh_sessions[i].executed = &e;
        fresh_sessions[i].estimator = fresh.get();
        reuse_sessions[i].executed = &e;
        reuse_sessions[i].estimator = reused.get();
      }

      const CellResult fresh = RunCell(&fresh_sessions, /*reuse=*/false);
      const CellResult reuse = RunCell(&reuse_sessions, /*reuse=*/true);
      total_fresh_ms += fresh.wall_ms;
      total_reuse_ms += reuse.wall_ms;
      // Bit-identity cross-check: identical schedule, so the progress sums
      // must be exactly equal (sums of identical doubles in identical
      // order). Compare representations to satisfy the no-float-== rule.
      const bool identical =
          StringF("%.17g", fresh.progress_sum) ==
          StringF("%.17g", reuse.progress_sum);
      if (!identical) ++mismatched_cells;
      std::printf("preset=%-8s sessions=%2zu estimates=%6llu "
                  "progress_sum=%.6f identical=%s\n",
                  preset.name.c_str(), num_sessions,
                  static_cast<unsigned long long>(reuse.estimates),
                  reuse.progress_sum, identical ? "yes" : "NO");
      const double fresh_rate =
          fresh.wall_ms > 0
              ? static_cast<double>(fresh.estimates) / (fresh.wall_ms / 1e3)
              : 0;
      const double reuse_rate =
          reuse.wall_ms > 0
              ? static_cast<double>(reuse.estimates) / (reuse.wall_ms / 1e3)
              : 0;
      bench_lines += StringF(
          "BENCH {\"bench\":\"estimator_throughput\",\"preset\":\"%s\","
          "\"sessions\":%zu,\"estimates\":%llu,"
          "\"estimates_per_sec_fresh\":%.0f,"
          "\"estimates_per_sec_reuse\":%.0f,\"speedup\":%.2f,"
          "\"alpha_freezes\":%llu,\"weight_cache_hits\":%llu,"
          "\"identical\":%s}\n",
          preset.name.c_str(), num_sessions,
          static_cast<unsigned long long>(reuse.estimates), fresh_rate,
          reuse_rate, fresh_rate > 0 ? reuse_rate / fresh_rate : 0,
          static_cast<unsigned long long>(reuse.alpha_freezes),
          static_cast<unsigned long long>(reuse.weight_cache_hits),
          identical ? "true" : "false");
    }
  }

  // Monitor-layer pair: the same 64-session monitor run with incremental
  // estimation on vs off — reports/sec includes checker + fan-out cost.
  double monitor_rates[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    const bool reuse = mode == 1;
    EstimatorOptions options = EstimatorOptions::Lqs();
    options.incremental = reuse;
    MonitorOptions mo;
    mo.ticks_per_horizon = 24;
    MonitorService monitor(mo);
    double offset = 0;
    for (size_t i = 0; i < 64; ++i) {
      const Executed& e = executed[i % executed.size()];
      monitor.RegisterSession(StringF("s%03zu:%s", i, e.query->name.c_str()),
                              &e.query->plan, e.catalog, &e.result.trace,
                              offset, options);
      offset += 11.0;
    }
    monitor.RunToCompletion({});
    ValidationReport invariants = monitor.FinalCheck();
    if (!invariants.ok()) {
      std::fprintf(stderr, "%s", invariants.ToString().c_str());
      return 1;
    }
    monitor_rates[mode] = monitor.stats().estimates_per_sec;
  }
  bench_lines += StringF(
      "BENCH {\"bench\":\"estimator_throughput_monitor\",\"sessions\":64,"
      "\"estimates_per_sec_fresh\":%.0f,\"estimates_per_sec_reuse\":%.0f,"
      "\"speedup\":%.2f}\n",
      monitor_rates[0], monitor_rates[1],
      monitor_rates[0] > 0 ? monitor_rates[1] / monitor_rates[0] : 0);

  const double overall =
      total_reuse_ms > 0 ? total_fresh_ms / total_reuse_ms : 0;
  bench_lines += StringF(
      "BENCH {\"bench\":\"estimator_throughput\",\"preset\":\"all\","
      "\"sessions\":0,\"fresh_wall_ms\":%.1f,\"reuse_wall_ms\":%.1f,"
      "\"overall_speedup\":%.2f,\"mismatched_cells\":%llu}\n",
      total_fresh_ms, total_reuse_ms, overall,
      static_cast<unsigned long long>(mismatched_cells));
  std::fputs(bench_lines.c_str(), stdout);
  if (mismatched_cells > 0) {
    std::fprintf(stderr,
                 "FAIL: fresh and reuse reports diverged in %llu cells\n",
                 static_cast<unsigned long long>(mismatched_cells));
    return 1;
  }
  return 0;
}
