// Reproduces Figure 14: Error_count of the overall query progress under
// (a) the Total-GetNext model without refinement ("No Refinement"),
// (b) TGN with Appendix A cardinality bounding only ("Bounding only"),
// (c) the driver-node estimator with online refinement + bounding
//     ("Bounding + Refinement"),
// across the five workloads of §5. An extra column shows the prior-work [22]
// linear-interpolation refinement as an ablation (DESIGN.md §5).
//
// Expected shape (paper, Fig. 14): (c) < (b) < (a) on every workload.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace lqs;        // NOLINT
  using namespace lqs::bench;  // NOLINT

  std::vector<EstimatorConfig> configs;
  configs.push_back({"No Refinement", EstimatorOptions::TotalGetNext()});
  configs.push_back({"Bounding only", EstimatorOptions::BoundingOnly()});
  configs.push_back(
      {"Bounding+Refinement", EstimatorOptions::DriverNodeRefined()});
  EstimatorOptions interp = EstimatorOptions::DriverNodeRefined();
  interp.interpolate_refinement = true;
  configs.push_back({"(ablation) interp [22]", interp});

  std::printf("Figure 14: effect of cardinality refinement on Error_count\n");
  std::printf("bench scale = %.2f\n", BenchScale());
  auto workloads = MakeAllWorkloads();
  std::vector<WorkloadResult> results;
  for (Workload& w : workloads) {
    std::printf("running %s (%zu queries)...\n", w.name.c_str(),
                w.queries.size());
    results.push_back(EvaluateWorkload(w, configs));
  }
  PrintErrorTable("=== Figure 14 (Error_count per workload) ===",
                  "Error_count", results, configs, /*use_time_metric=*/false);
  return 0;
}
