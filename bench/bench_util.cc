#include "bench/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/stringf.h"

namespace lqs {
namespace bench {

double BenchScale() {
  const char* env = std::getenv("LQS_BENCH_SCALE");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.5;
}

std::vector<Workload> MakeAllWorkloads() {
  const double scale = BenchScale();
  OptimizerOptions opt;
  opt.selectivity_error = kBenchSelectivityError;

  std::vector<Workload> workloads;
  auto add = [&](StatusOr<Workload> w) {
    if (!w.ok()) {
      std::fprintf(stderr, "workload build failed: %s\n",
                   w.status().ToString().c_str());
      std::exit(1);
    }
    Status s = AnnotateWorkload(&w.value(), opt);
    if (!s.ok()) {
      std::fprintf(stderr, "annotation failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    workloads.push_back(std::move(w).value());
  };

  {
    RealWorkloadOptions real;
    real.which = 3;
    real.scale = scale;
    real.num_queries = static_cast<int>(24 * std::min(1.0, scale * 2));
    add(MakeRealWorkload(real));
    real.which = 2;
    real.num_queries = static_cast<int>(30 * std::min(1.0, scale * 2));
    add(MakeRealWorkload(real));
    real.which = 1;
    real.num_queries = static_cast<int>(30 * std::min(1.0, scale * 2));
    add(MakeRealWorkload(real));
  }
  {
    TpcdsOptions ds;
    ds.scale = scale;
    add(MakeTpcdsWorkload(ds));
  }
  {
    TpchOptions h;
    h.scale = scale;
    add(MakeTpchWorkload(h));
  }
  return workloads;
}

WorkloadResult EvaluateWorkload(Workload& workload,
                                const std::vector<EstimatorConfig>& configs) {
  WorkloadResult result;
  result.workload = workload.name;
  result.error_count.assign(configs.size(), 0.0);
  result.error_time.assign(configs.size(), 0.0);
  result.op_count_error.resize(configs.size());
  result.op_time_error.resize(configs.size());

  ExecOptions exec;
  exec.snapshot_interval_ms = kBenchSnapshotIntervalMs;
  for (WorkloadQuery& q : workload.queries) {
    auto run = ExecuteQuery(q.plan, workload.catalog.get(), exec);
    if (!run.ok()) {
      std::fprintf(stderr, "  %s/%s failed: %s\n", workload.name.c_str(),
                   q.name.c_str(), run.status().ToString().c_str());
      continue;
    }
    if (run->trace.snapshots.size() < 3) continue;  // too short to observe
    result.queries++;
    for (size_t c = 0; c < configs.size(); ++c) {
      QueryEvaluation eval = EvaluateQuery(q.plan, *workload.catalog,
                                           run->trace, configs[c].options);
      result.error_count[c] += eval.error_count;
      result.error_time[c] += eval.error_time;
      for (const OperatorError& op : eval.operator_errors) {
        if (op.count_observations > 0) {
          auto& cell = result.op_count_error[c][op.type];
          cell.first += op.count_error;
          cell.second += 1;
        }
        if (op.time_observations > 0) {
          auto& cell = result.op_time_error[c][op.type];
          cell.first += op.time_error;
          cell.second += 1;
        }
      }
    }
  }
  if (result.queries > 0) {
    for (size_t c = 0; c < configs.size(); ++c) {
      result.error_count[c] /= result.queries;
      result.error_time[c] /= result.queries;
    }
  }
  return result;
}

void PrintErrorTable(const std::string& title, const std::string& metric,
                     const std::vector<WorkloadResult>& results,
                     const std::vector<EstimatorConfig>& configs,
                     bool use_time_metric) {
  std::printf("\n%s\n", title.c_str());
  std::printf("(average %s per query; lower is better)\n", metric.c_str());
  std::printf("%-22s %8s", "workload", "queries");
  for (const auto& c : configs) std::printf(" %22s", c.name.c_str());
  std::printf("\n");
  for (const auto& r : results) {
    std::printf("%-22s %8d", r.workload.c_str(), r.queries);
    const auto& errs = use_time_metric ? r.error_time : r.error_count;
    for (double e : errs) std::printf(" %22.4f", e);
    std::printf("\n");
  }
}

void PrintPerOperatorTable(const std::string& title,
                           const std::vector<WorkloadResult>& results,
                           const std::vector<EstimatorConfig>& configs,
                           bool use_time_metric) {
  // Aggregate across workloads.
  std::vector<std::map<OpType, std::pair<double, int>>> agg(configs.size());
  for (const auto& r : results) {
    const auto& src = use_time_metric ? r.op_time_error : r.op_count_error;
    for (size_t c = 0; c < configs.size(); ++c) {
      for (const auto& [type, cell] : src[c]) {
        agg[c][type].first += cell.first;
        agg[c][type].second += cell.second;
      }
    }
  }
  std::printf("\n%s\n", title.c_str());
  std::printf("%-28s %10s", "operator", "instances");
  for (const auto& c : configs) std::printf(" %22s", c.name.c_str());
  std::printf("\n");
  for (const auto& [type, cell0] : agg[0]) {
    if (cell0.second < 3) continue;  // too few instances to be meaningful
    std::printf("%-28s %10d", OpTypeName(type), cell0.second);
    for (size_t c = 0; c < configs.size(); ++c) {
      auto it = agg[c].find(type);
      double avg = (it == agg[c].end() || it->second.second == 0)
                       ? 0.0
                       : it->second.first / it->second.second;
      std::printf(" %22.4f", avg);
    }
    std::printf("\n");
  }
}

std::string RenderCurve(const std::vector<double>& values, int width) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::string out;
  if (values.empty()) return out;
  for (int i = 0; i < width; ++i) {
    size_t idx = values.size() * static_cast<size_t>(i) /
                 static_cast<size_t>(width);
    double v = values[idx];
    int level = static_cast<int>(v * 7.999);
    if (level < 0) level = 0;
    if (level > 7) level = 7;
    out += kLevels[level];
  }
  return out;
}

}  // namespace bench
}  // namespace lqs
