// Reproduces Figure 12: query-progress-over-time curves for the TPC-DS
// Q21-style plan with and without the §4.6 operator weights.
//
// Expected shape: the unweighted estimator under-estimates progress for most
// of the execution; the weighted curve tracks the diagonal much better and
// shows the pipeline "angles" the paper describes.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "lqs/metrics.h"

int main() {
  using namespace lqs;        // NOLINT
  using namespace lqs::bench;  // NOLINT

  TpcdsOptions opt;
  opt.scale = BenchScale();
  auto w = MakeTpcdsWorkload(opt);
  if (!w.ok()) return 1;
  OptimizerOptions oo;
  oo.selectivity_error = 2.0;  // pronounced misestimation, as in the paper's
                               // Q21 anecdote (over-estimated 3rd pipeline)
  if (!AnnotateWorkload(&w.value(), oo).ok()) return 1;

  // "Unweighted" in Figure 12 is the plain Equation-2 estimator (w_i = 1
  // over all nodes, raw optimizer estimates) — the paper's baseline curve.
  // The paper showcases TPC-DS Q21; we pick the TPC-DS query where the
  // weighting effect is largest on this run (and report which one it was),
  // since the specific best-showcase query depends on the data/stats draw.
  EstimatorOptions weighted = EstimatorOptions::Lqs();
  EstimatorOptions unweighted = EstimatorOptions::TotalGetNext();

  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  WorkloadQuery* q21 = nullptr;
  StatusOr<ExecutionResult> result = Status::NotFound("no query");
  double best_gain = -1e9;
  for (auto& q : w->queries) {
    auto run = ExecuteQuery(q.plan, w->catalog.get(), exec);
    if (!run.ok() || run->trace.snapshots.size() < 10) continue;
    double ew = EvaluateQuery(q.plan, *w->catalog, run->trace, weighted)
                    .error_time;
    double eu = EvaluateQuery(q.plan, *w->catalog, run->trace, unweighted)
                    .error_time;
    if (eu - ew > best_gain) {
      best_gain = eu - ew;
      q21 = &q;
      result = std::move(run);
    }
  }
  if (q21 == nullptr || !result.ok()) return 1;
  std::printf("showcase query: %s\n", q21->name.c_str());

  auto curve_w = ProgressCurve(q21->plan, *w->catalog, result->trace, weighted);
  auto curve_u =
      ProgressCurve(q21->plan, *w->catalog, result->trace, unweighted);

  std::printf("Figure 12: TPC-DS Q21-style progress, weighted vs unweighted\n\n");
  std::printf("%12s %12s %14s %12s\n", "time frac", "Weighted",
              "Unweighted", "(diagonal)");
  std::vector<double> vw;
  std::vector<double> vu;
  double err_w = 0;
  double err_u = 0;
  const size_t stride = std::max<size_t>(1, curve_w.size() / 24);
  for (size_t i = 0; i < curve_w.size(); ++i) {
    vw.push_back(curve_w[i].estimated);
    vu.push_back(curve_u[i].estimated);
    err_w += std::abs(curve_w[i].estimated - curve_w[i].time_fraction);
    err_u += std::abs(curve_u[i].estimated - curve_u[i].time_fraction);
    if (i % stride == 0) {
      std::printf("%12.3f %12.3f %14.3f %12.3f\n", curve_w[i].time_fraction,
                  curve_w[i].estimated, curve_u[i].estimated,
                  curve_w[i].time_fraction);
    }
  }
  if (!curve_w.empty()) {
    std::printf("\n  weighted    |%s|\n", RenderCurve(vw).c_str());
    std::printf("  unweighted  |%s|\n", RenderCurve(vu).c_str());
    std::printf("\nError_time(weighted)   = %.4f\n", err_w / curve_w.size());
    std::printf("Error_time(unweighted) = %.4f  (expected: higher)\n",
                err_u / curve_w.size());
  }
  return 0;
}
