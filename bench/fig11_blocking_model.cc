// Reproduces Figures 10/11: progress of a Hash Aggregate (TPC-DS Q13-style)
// under the output-only GetNext model vs the §4.5 two-phase (input+output)
// model, against the operator's true time fraction.
//
// Expected shape: the output-only curve stays ~0 for almost the whole run
// and jumps to 1 at the end; the two-phase curve tracks time.

#include <cstdio>

#include "bench/bench_util.h"
#include "lqs/estimator.h"

int main() {
  using namespace lqs;        // NOLINT
  using namespace lqs::bench;  // NOLINT

  TpcdsOptions opt;
  opt.scale = BenchScale();
  auto w = MakeTpcdsWorkload(opt);
  if (!w.ok()) return 1;
  OptimizerOptions oo;
  oo.selectivity_error = kBenchSelectivityError;
  if (!AnnotateWorkload(&w.value(), oo).ok()) return 1;

  // Locate the Q13-style query and its Hash Aggregate node.
  WorkloadQuery* q13 = nullptr;
  for (auto& q : w->queries) {
    if (q.name == "ds_q13") q13 = &q;
  }
  if (q13 == nullptr) return 1;
  int agg_node = -1;
  q13->plan.root->Visit([&](const PlanNode& n) {
    if (n.type == OpType::kHashAggregate && agg_node < 0) agg_node = n.id;
  });

  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  auto result = ExecuteQuery(q13->plan, w->catalog.get(), exec);
  if (!result.ok()) return 1;

  EstimatorOptions out_only = EstimatorOptions::Lqs();
  out_only.two_phase_blocking = false;
  ProgressEstimator est_out(&q13->plan, w->catalog.get(), out_only);
  ProgressEstimator est_two(&q13->plan, w->catalog.get(),
                            EstimatorOptions::Lqs());

  const auto& fin = result->trace.final_snapshot;
  const double t0 = fin.operators[agg_node].open_time_ms;
  const double t1 = fin.operators[agg_node].last_active_ms;

  std::printf("Figure 11: Hash Aggregate progress (TPC-DS Q13-style),\n");
  std::printf("output-only vs two-phase model vs true time fraction\n\n");
  std::printf("%12s %14s %16s %12s\n", "time (ms)", "Output Ni only",
              "Input+Output Ni", "True");
  std::vector<double> curve_out;
  std::vector<double> curve_two;
  double err_out = 0;
  double err_two = 0;
  int n = 0;
  const auto& snaps = result->trace.snapshots;
  const size_t stride = std::max<size_t>(1, snaps.size() / 24);
  ProgressEstimator::Workspace ws_out;
  ProgressEstimator::Workspace ws_two;
  ProgressReport report;
  for (size_t i = 0; i < snaps.size(); ++i) {
    const auto& s = snaps[i];
    if (s.time_ms < t0 || s.time_ms > t1 || t1 <= t0) continue;
    double true_frac = (s.time_ms - t0) / (t1 - t0);
    est_out.EstimateInto(s, &ws_out, &report);
    double p_out = report.operator_progress[agg_node];
    est_two.EstimateInto(s, &ws_two, &report);
    double p_two = report.operator_progress[agg_node];
    curve_out.push_back(p_out);
    curve_two.push_back(p_two);
    err_out += std::abs(p_out - true_frac);
    err_two += std::abs(p_two - true_frac);
    n++;
    if (i % stride == 0) {
      std::printf("%12.1f %14.3f %16.3f %12.3f\n", s.time_ms, p_out, p_two,
                  true_frac);
    }
  }
  if (n > 0) {
    std::printf("\ncurves over the operator's activity window:\n");
    std::printf("  output-only  |%s|\n", RenderCurve(curve_out).c_str());
    std::printf("  two-phase    |%s|\n", RenderCurve(curve_two).c_str());
    std::printf("\nError_time(output-only) = %.4f\n", err_out / n);
    std::printf("Error_time(two-phase)   = %.4f  (expected: much lower)\n",
                err_two / n);
  }
  return 0;
}
