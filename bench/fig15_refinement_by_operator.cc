// Reproduces Figure 15: per-operator-type average L1 cardinality-ratio error
// (|K/N̂ − K/N_true|) under (a) no refinement, (b) basic §4.1 cardinality
// refinement, (c) refinement plus the §4.4 semi-blocking adjustments.
//
// Expected shape (paper, Fig. 15): refinement helps most operators (Nested
// Loops and bitmap-filtered scans most of all); the semi-blocking
// adjustments improve refinement almost across the board.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace lqs;        // NOLINT
  using namespace lqs::bench;  // NOLINT

  EstimatorOptions none = EstimatorOptions::DriverNodeRefined();
  none.refine_cardinality = false;
  none.bound_cardinality = false;
  none.semi_blocking_adjust = false;
  EstimatorOptions refine = EstimatorOptions::DriverNodeRefined();
  refine.semi_blocking_adjust = false;
  refine.bound_cardinality = false;
  EstimatorOptions semi = EstimatorOptions::DriverNodeRefined();
  semi.bound_cardinality = false;

  std::vector<EstimatorConfig> configs;
  configs.push_back({"No Refinement", none});
  configs.push_back({"Refinement", refine});
  configs.push_back({"+Semi-Blocking Adj.", semi});

  std::printf(
      "Figure 15: per-operator effect of cardinality refinement "
      "(avg L1 error of K/N ratios)\n");
  std::printf("bench scale = %.2f\n", BenchScale());
  auto workloads = MakeAllWorkloads();
  std::vector<WorkloadResult> results;
  for (Workload& w : workloads) {
    std::printf("running %s (%zu queries)...\n", w.name.c_str(),
                w.queries.size());
    results.push_back(EvaluateWorkload(w, configs));
  }
  PrintPerOperatorTable(
      "=== Figure 15 (average per-operator cardinality-ratio error) ===",
      results, configs, /*use_time_metric=*/false);
  return 0;
}
