// Ensemble-vs-fixed accuracy on seeded misestimated workloads — the König
// et al. evaluation question applied to our substrate: does online
// selection among the §5 presets dominate committing to any one of them
// when the optimizer's cardinalities are wrong?
//
// Method: TPC-H (skewed) and TPC-DS workloads are annotated with seeded
// random selectivity errors (exp(U(-e, e)) multipliers per predicate,
// several seeds per workload, so different queries are misestimated in
// different directions). Every query executes once; its trace is replayed
// through each fixed preset (EvaluateQuery) and through the ensemble
// (EvaluateEnsemble), and Error_count/Error_time aggregate per
// configuration.
//
// Gate (exit 1 on violation, like monitor_scale's correctness gates):
//   ensemble Error_time <= 1.1 x best fixed preset, and strictly better
//   than the worst fixed preset. Robustness, not oracle-picking: the
//   ensemble must track the per-workload winner it cannot know in advance
//   while never degenerating to the loser.
//
// Output: one trailing "BENCH {...}" JSON line per workload-seed plus one
// aggregate line (scripts/bench.sh collects them into BENCH_ensemble.json).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ensemble/ensemble_metrics.h"
#include "lqs/metrics.h"
#include "workload/workload.h"

int main() {
  using namespace lqs;         // NOLINT
  using namespace lqs::bench;  // NOLINT

  ExecOptions exec;
  exec.snapshot_interval_ms = kBenchSnapshotIntervalMs;

  const int kPresets = EstimatorOptions::kPresetCount;
  struct Config {
    std::string workload;
    uint64_t seed;
    double selectivity_error;
  };
  // Two misestimation severities per workload, distinct seeds: e = 1.2
  // scatters estimates ~3x in both directions, e = 2.0 is the pronounced
  // stale-statistics regime the paper's robustness argument targets.
  const Config configs[] = {
      {"tpch", 7, kBenchSelectivityError},
      {"tpch", 1031, 2.0},
      {"tpcds", 13, kBenchSelectivityError},
      {"tpcds", 4099, 2.0},
  };

  // Per-preset and ensemble Error_time/Error_count sums over all queries.
  std::vector<double> preset_time(kPresets, 0), preset_count(kPresets, 0);
  double ensemble_time = 0, ensemble_count = 0;
  uint64_t ensemble_switches = 0;
  double band_coverage = 0, band_width = 0;
  int queries = 0;

  std::string bench_lines;
  char line[512];
  for (const Config& cfg : configs) {
    StatusOr<Workload> w = Status::NotFound("unset");
    if (cfg.workload == "tpch") {
      TpchOptions opt;
      opt.scale = BenchScale();
      w = MakeTpchWorkload(opt);
    } else {
      TpcdsOptions opt;
      opt.scale = BenchScale();
      w = MakeTpcdsWorkload(opt);
    }
    if (!w.ok()) {
      std::fprintf(stderr, "workload %s failed: %s\n", cfg.workload.c_str(),
                   w.status().ToString().c_str());
      return 1;
    }
    OptimizerOptions oo;
    oo.selectivity_error = cfg.selectivity_error;
    oo.seed = cfg.seed;
    if (!AnnotateWorkload(&w.value(), oo).ok()) return 1;

    std::vector<double> wl_preset_time(kPresets, 0);
    double wl_ensemble_time = 0;
    int wl_queries = 0;
    for (WorkloadQuery& q : w->queries) {
      auto run = ExecuteQuery(q.plan, w->catalog.get(), exec);
      if (!run.ok() || run->trace.snapshots.size() < 10) continue;
      for (int p = 0; p < kPresets; ++p) {
        const QueryEvaluation e =
            EvaluateQuery(q.plan, *w->catalog, run->trace,
                          EstimatorOptions::PresetByIndex(p));
        preset_time[p] += e.error_time;
        preset_count[p] += e.error_count;
        wl_preset_time[p] += e.error_time;
      }
      const EnsembleEvaluation e =
          EvaluateEnsemble(q.plan, *w->catalog, run->trace, EnsembleOptions{});
      ensemble_time += e.error_time;
      ensemble_count += e.error_count;
      ensemble_switches += e.switches;
      band_coverage += e.band_coverage;
      band_width += e.band_width;
      ++queries;
      ++wl_queries;
    }
    if (wl_queries == 0) continue;

    double wl_best = wl_preset_time[0], wl_worst = wl_preset_time[0];
    int wl_best_ix = 0;
    for (int p = 1; p < kPresets; ++p) {
      if (wl_preset_time[p] < wl_best) {
        wl_best = wl_preset_time[p];
        wl_best_ix = p;
      }
      if (wl_preset_time[p] > wl_worst) wl_worst = wl_preset_time[p];
    }
    wl_ensemble_time = ensemble_time;  // running total; per-workload below
    (void)wl_ensemble_time;
    std::printf("%-6s seed=%-5llu e=%.1f  queries=%2d  best=%s\n",
                cfg.workload.c_str(),
                static_cast<unsigned long long>(cfg.seed),
                cfg.selectivity_error, wl_queries,
                EstimatorOptions::PresetName(wl_best_ix));
    std::snprintf(line, sizeof(line),
                  "BENCH {\"bench\":\"ensemble_accuracy\",\"workload\":\"%s\","
                  "\"seed\":%llu,\"selectivity_error\":%.2f,\"queries\":%d,"
                  "\"best_fixed\":\"%s\",\"best_fixed_error_time\":%.4f,"
                  "\"worst_fixed_error_time\":%.4f}\n",
                  cfg.workload.c_str(),
                  static_cast<unsigned long long>(cfg.seed),
                  cfg.selectivity_error, wl_queries,
                  EstimatorOptions::PresetName(wl_best_ix),
                  wl_best / wl_queries, wl_worst / wl_queries);
    bench_lines += line;
  }
  if (queries == 0) {
    std::fprintf(stderr, "no queries executed\n");
    return 1;
  }

  const double n = static_cast<double>(queries);
  double best_time = preset_time[0], worst_time = preset_time[0];
  int best_ix = 0, worst_ix = 0;
  for (int p = 1; p < kPresets; ++p) {
    if (preset_time[p] < best_time) {
      best_time = preset_time[p];
      best_ix = p;
    }
    if (preset_time[p] > worst_time) {
      worst_time = preset_time[p];
      worst_ix = p;
    }
  }

  std::printf("\n%d queries, Error_time / Error_count per configuration:\n",
              queries);
  for (int p = 0; p < kPresets; ++p) {
    std::printf("  %-10s %.4f / %.4f\n", EstimatorOptions::PresetName(p),
                preset_time[p] / n, preset_count[p] / n);
  }
  std::printf("  %-10s %.4f / %.4f  (switches=%llu, band coverage %.2f, "
              "width %.3f)\n",
              "ensemble", ensemble_time / n, ensemble_count / n,
              static_cast<unsigned long long>(ensemble_switches),
              band_coverage / n, band_width / n);
  std::printf("  best fixed: %s, worst fixed: %s\n",
              EstimatorOptions::PresetName(best_ix),
              EstimatorOptions::PresetName(worst_ix));

  std::snprintf(line, sizeof(line),
                "BENCH {\"bench\":\"ensemble_accuracy\",\"workload\":\"all\","
                "\"queries\":%d,\"ensemble_error_time\":%.4f,"
                "\"ensemble_error_count\":%.4f,\"best_fixed\":\"%s\","
                "\"best_fixed_error_time\":%.4f,\"worst_fixed\":\"%s\","
                "\"worst_fixed_error_time\":%.4f,\"switches\":%llu,"
                "\"band_coverage\":%.3f,\"band_width\":%.3f}\n",
                queries, ensemble_time / n, ensemble_count / n,
                EstimatorOptions::PresetName(best_ix), best_time / n,
                EstimatorOptions::PresetName(worst_ix), worst_time / n,
                static_cast<unsigned long long>(ensemble_switches),
                band_coverage / n, band_width / n);
  bench_lines += line;
  std::fputs(bench_lines.c_str(), stdout);

  // The acceptance gate. Tolerance on the best side (the ensemble pays a
  // warm-up and can never beat an oracle on every workload), strictness on
  // the worst side (robustness is the whole point).
  if (ensemble_time > 1.1 * best_time) {
    std::fprintf(stderr,
                 "GATE FAILED: ensemble Error_time %.4f > 1.1x best fixed "
                 "%.4f\n",
                 ensemble_time / n, best_time / n);
    return 1;
  }
  if (ensemble_time >= worst_time) {
    std::fprintf(stderr,
                 "GATE FAILED: ensemble Error_time %.4f not better than "
                 "worst fixed %.4f\n",
                 ensemble_time / n, worst_time / n);
    return 1;
  }
  std::printf("gate ok: ensemble within 1.1x of best fixed, better than "
              "worst fixed\n");
  return 0;
}
