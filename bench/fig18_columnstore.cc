// Reproduces Figure 18: average Error_time for the TPC-H workload under two
// physical designs — a DTA-like rowstore index set vs nonclustered
// columnstore indexes on every table (§5.4).
//
// Expected shape (paper, Fig. 18): the columnstore design reduces the
// average error significantly.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace lqs;        // NOLINT
  using namespace lqs::bench;  // NOLINT

  std::vector<EstimatorConfig> configs;
  configs.push_back({"LQS", EstimatorOptions::Lqs()});

  std::printf("Figure 18: Error_time with and without columnstore indexes\n");
  std::printf("bench scale = %.2f\n", BenchScale());

  std::vector<WorkloadResult> results;
  for (PhysicalDesign design :
       {PhysicalDesign::kRowstore, PhysicalDesign::kColumnstore}) {
    TpchOptions opt;
    opt.scale = BenchScale();
    opt.design = design;
    auto w = MakeTpchWorkload(opt);
    if (!w.ok()) {
      std::fprintf(stderr, "workload failed: %s\n",
                   w.status().ToString().c_str());
      return 1;
    }
    OptimizerOptions optimizer;
    optimizer.selectivity_error = kBenchSelectivityError;
    Status s = AnnotateWorkload(&w.value(), optimizer);
    if (!s.ok()) {
      std::fprintf(stderr, "annotate failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("running %s (%zu queries)...\n", w->name.c_str(),
                w->queries.size());
    results.push_back(EvaluateWorkload(w.value(), configs));
  }
  PrintErrorTable("=== Figure 18 (average Error_time, TPC-H designs) ===",
                  "Error_time", results, configs, /*use_time_metric=*/true);
  return 0;
}
