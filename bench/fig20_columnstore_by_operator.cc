// Reproduces Figure 20: per-operator Error_time for the TPC-H workload under
// the rowstore vs columnstore physical designs (§5.4).
//
// Expected shape (paper, Fig. 20): per-operator error drops for the
// operators that appear in the columnstore design.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace lqs;        // NOLINT
  using namespace lqs::bench;  // NOLINT

  std::vector<EstimatorConfig> configs;
  configs.push_back({"LQS", EstimatorOptions::Lqs()});

  std::printf("Figure 20: per-operator Error_time per physical design\n");
  std::printf("bench scale = %.2f\n", BenchScale());

  std::vector<WorkloadResult> results;
  for (PhysicalDesign design :
       {PhysicalDesign::kRowstore, PhysicalDesign::kColumnstore}) {
    TpchOptions opt;
    opt.scale = BenchScale();
    opt.design = design;
    auto w = MakeTpchWorkload(opt);
    if (!w.ok()) return 1;
    OptimizerOptions optimizer;
    optimizer.selectivity_error = kBenchSelectivityError;
    if (!AnnotateWorkload(&w.value(), optimizer).ok()) return 1;
    std::printf("running %s...\n", w->name.c_str());
    results.push_back(EvaluateWorkload(w.value(), configs));
  }

  // Render the two designs as two columns of one per-operator table.
  std::printf("\n=== Figure 20 (per-operator Error_time) ===\n");
  std::printf("%-30s %22s %22s\n", "operator", "TPC-H (rowstore)",
              "TPC-H ColumnStore");
  std::map<OpType, std::pair<double, int>> row = results[0].op_time_error[0];
  std::map<OpType, std::pair<double, int>> col = results[1].op_time_error[0];
  std::map<OpType, bool> all;
  for (auto& [t, c] : row) all[t] = true;
  for (auto& [t, c] : col) all[t] = true;
  for (auto& [type, unused] : all) {
    (void)unused;
    auto fmt = [](const std::map<OpType, std::pair<double, int>>& m,
                  OpType t) -> double {
      auto it = m.find(t);
      if (it == m.end() || it->second.second == 0) return 0.0;
      return it->second.first / it->second.second;
    };
    std::printf("%-30s %22.4f %22.4f\n", OpTypeName(type), fmt(row, type),
                fmt(col, type));
  }
  return 0;
}
