"""libclang frontend for lqs-verify (clang.cindex).

Preferred when the `clang` Python package and a libclang shared object are
both available (e.g. CI installs the `libclang` wheel into a cached venv);
lowers real clang ASTs into the same model.SourceModel the built-in
frontend produces, so the checkers are frontend-agnostic. In environments
without libclang — including the development container, which ships only
libclang-cpp — the driver falls back to frontend_lite, whose behavior the
fixture suite pins as the reference.

Annotations arrive as [[clang::annotate]] attributes (see
src/common/noalloc.h and src/common/deterministic.h): "lqs::noalloc",
"lqs::alloc_ok:<justification>", and "lqs::deterministic".
Comment-level suppressions and the include graph are scanned from raw text
via the shared helpers in model.py, identically to the lite frontend.

The locks/determinism facts — the lock_rank registry, GUARDED_BY coverage
state, lexically-held lock sets, and hazard sites — are *defined* lexically
(DESIGN.md section 14): a MutexLock scope holds until its brace closes, an
escape comment suppresses the line below it, and the registry is the text
of the `namespace lock_rank` block. Both frontends therefore source those
facts from the same scanner (frontend_lite's), exactly as both already do
for comment suppressions; the AST-derived facts (calls, allocations,
Status returns, annotate attributes) stay native here. This keeps the two
frontends byte-identical on the checkers' inputs by construction instead
of by parallel reimplementation.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

import frontend_lite
from model import (AllocSite, CallSite, FunctionInfo, SourceModel,
                   scan_includes, scan_suppressions)

_ALLOC_FUNCTIONS = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "posix_memalign", "make_unique", "make_shared",
}
_CONTAINER_GROWTH = {
    "push_back", "emplace_back", "emplace", "emplace_hint", "insert",
    "resize", "reserve", "assign", "append", "push_front", "emplace_front",
}


class FrontendUnavailable(Exception):
    pass


def _load_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError as err:
        raise FrontendUnavailable(f"clang.cindex not importable: {err}")
    if not cindex.Config.loaded:
        # Respect an explicit override, then let cindex try its defaults.
        override = os.environ.get("LQS_VERIFY_LIBCLANG")
        if override:
            cindex.Config.set_library_file(override)
    try:
        cindex.Index.create()
    except Exception as err:  # cindex.LibclangError and friends
        raise FrontendUnavailable(f"libclang not loadable: {err}")
    return cindex


def available() -> bool:
    try:
        _load_cindex()
        return True
    except FrontendUnavailable:
        return False


def _compile_args(compile_commands: Optional[str],
                  root: str) -> Dict[str, List[str]]:
    """File -> clang args from compile_commands.json (flags only)."""
    args: Dict[str, List[str]] = {}
    if compile_commands is None or not os.path.exists(compile_commands):
        return args
    with open(compile_commands, "r", encoding="utf-8") as handle:
        entries = json.load(handle)
    drop_next = {"-o", "-c"}
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", root), entry["file"]))
        raw = entry.get("arguments")
        if raw is None:
            raw = entry.get("command", "").split()
        cleaned: List[str] = []
        skip = False
        for arg in raw[1:]:  # drop the compiler itself
            if skip:
                skip = False
                continue
            if arg in drop_next:
                skip = True
                continue
            if arg == entry["file"] or arg.endswith(entry["file"]):
                continue
            cleaned.append(arg)
        args[path] = cleaned
    return args


def parse_files(paths: List[str],
                root: str,
                compile_commands: Optional[str] = None
                ) -> Tuple[SourceModel, List[str]]:
    """Parse `paths` with libclang into one SourceModel."""
    cindex = _load_cindex()
    CursorKind = cindex.CursorKind
    index = cindex.Index.create()
    per_file_args = _compile_args(compile_commands, root)
    default_args = ["-std=c++20", f"-I{os.path.join(root, 'src')}",
                    f"-I{root}"]

    model = SourceModel()
    errors: List[str] = []
    wanted = {os.path.normpath(p) for p in paths}

    function_kinds = {
        CursorKind.FUNCTION_DECL,
        CursorKind.CXX_METHOD,
        CursorKind.CONSTRUCTOR,
        CursorKind.DESTRUCTOR,
        CursorKind.FUNCTION_TEMPLATE,
    }

    def qualname_of(cursor) -> str:
        parts = [cursor.spelling]
        parent = cursor.semantic_parent
        while parent is not None and parent.kind in (
                CursorKind.CLASS_DECL, CursorKind.STRUCT_DECL,
                CursorKind.CLASS_TEMPLATE):
            parts.insert(0, parent.spelling)
            parent = parent.semantic_parent
        return "::".join(parts)

    def annotations_of(cursor) -> Tuple[bool, Optional[str], bool]:
        noalloc, alloc_ok, deterministic = False, None, False
        for child in cursor.get_children():
            if child.kind != CursorKind.ANNOTATE_ATTR:
                continue
            text = child.displayname or ""
            if text == "lqs::noalloc":
                noalloc = True
            elif text.startswith("lqs::alloc_ok:"):
                alloc_ok = text[len("lqs::alloc_ok:"):]
            elif text == "lqs::alloc_ok":
                alloc_ok = ""
            elif text == "lqs::deterministic":
                deterministic = True
        return noalloc, alloc_ok, deterministic

    def lower_body(cursor, fn: FunctionInfo) -> None:
        """Collect call and allocation sites from a function body."""
        body = None
        for child in cursor.get_children():
            if child.kind == CursorKind.COMPOUND_STMT:
                body = child
        if body is None:
            return

        def stmt_children(node):
            return list(node.get_children())

        def record_call(node, discarded: bool,
                        assigned_to: Optional[str]) -> None:
            ref = node.referenced
            name = ref.spelling if ref is not None else node.spelling
            if not name:
                return
            line = node.location.line
            is_method = node.kind == CursorKind.CALL_EXPR and \
                ref is not None and ref.kind == CursorKind.CXX_METHOD
            if is_method and name in _CONTAINER_GROWTH:
                fn.allocs.append(AllocSite("container", name, line))
            if name in _ALLOC_FUNCTIONS:
                fn.allocs.append(AllocSite("alloc-fn", name, line))
            qualifier = None
            if ref is not None and ref.semantic_parent is not None and \
                    ref.semantic_parent.kind in (CursorKind.CLASS_DECL,
                                                 CursorKind.STRUCT_DECL):
                qualifier = ref.semantic_parent.spelling
            fn.calls.append(
                CallSite(name=name, line=line, is_method_call=is_method,
                         qualifier=qualifier, discarded=discarded,
                         assigned_to=assigned_to,
                         consulted=assigned_to is None))

        def used_later(var_name: str, after_line: int) -> bool:
            for node in body.walk_preorder():
                if (node.kind == CursorKind.DECL_REF_EXPR
                        and node.spelling == var_name
                        and node.location.line > after_line):
                    return True
            return False

        def walk(node, statement_level: bool) -> None:
            for child in stmt_children(node):
                kind = child.kind
                if kind == CursorKind.CXX_NEW_EXPR:
                    fn.allocs.append(
                        AllocSite("new", "operator new",
                                  child.location.line))
                    walk(child, False)
                    continue
                if kind == CursorKind.CALL_EXPR:
                    record_call(child, discarded=statement_level,
                                assigned_to=None)
                    walk(child, False)
                    continue
                if kind == CursorKind.DECL_STMT and statement_level:
                    for decl in stmt_children(child):
                        if decl.kind != CursorKind.VAR_DECL:
                            walk(decl, False)
                            continue
                        init_calls = [
                            n for n in decl.walk_preorder()
                            if n.kind == CursorKind.CALL_EXPR
                        ]
                        if init_calls:
                            top = init_calls[0]
                            consulted = used_later(decl.spelling,
                                                   decl.location.line)
                            record_call(top, discarded=False,
                                        assigned_to=decl.spelling)
                            fn.calls[-1].consulted = consulted
                            for inner in init_calls[1:]:
                                record_call(inner, discarded=False,
                                            assigned_to=None)
                            for n in decl.walk_preorder():
                                if n.kind == CursorKind.CXX_NEW_EXPR:
                                    fn.allocs.append(
                                        AllocSite("new", "operator new",
                                                  n.location.line))
                        else:
                            walk(decl, False)
                    continue
                is_block = kind == CursorKind.COMPOUND_STMT
                walk(child, is_block or (statement_level and kind in (
                    CursorKind.IF_STMT, CursorKind.FOR_STMT,
                    CursorKind.WHILE_STMT, CursorKind.SWITCH_STMT)))

        walk(body, True)

    for path in sorted(wanted):
        try:
            with open(path, "r", encoding="utf-8",
                      errors="replace") as handle:
                text = handle.read()
        except OSError as err:
            errors.append(f"{path}: {err}")
            continue
        model.includes[path] = scan_includes(text)
        model.suppressions[path] = scan_suppressions(path, text)

    # Parse only .cc translation units; headers are reached through them
    # and also parsed standalone so header-only functions are modeled.
    for path in sorted(wanted):
        args = per_file_args.get(os.path.normpath(path), default_args)
        if path.endswith(".h"):
            args = args + ["-x", "c++-header"]
        try:
            tu = index.parse(path, args=args)
        except Exception as err:
            errors.append(f"{path}: libclang parse failed: {err}")
            continue
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind not in function_kinds:
                continue
            loc = cursor.location
            if loc.file is None or os.path.normpath(
                    loc.file.name) != os.path.normpath(path):
                continue
            noalloc, alloc_ok, deterministic = annotations_of(cursor)
            fn = FunctionInfo(
                name=cursor.spelling,
                qualname=qualname_of(cursor),
                file=path,
                line=loc.line,
                is_definition=cursor.is_definition(),
                is_virtual=bool(cursor.is_virtual_method())
                if cursor.kind == CursorKind.CXX_METHOD else False,
                returns_status="Status" in (cursor.result_type.spelling
                                            or ""),
                noalloc=noalloc,
                alloc_ok=alloc_ok,
                deterministic=deterministic,
            )
            if fn.is_definition:
                lower_body(cursor, fn)
            model.functions.append(fn)

    for fn in model.functions:
        if fn.returns_status:
            model.status_names.add(fn.name)
    _overlay_lexical_facts(model, sorted(wanted))
    return model, errors


def _overlay_lexical_facts(model: SourceModel, paths: List[str]) -> None:
    """Graft the lexically-defined locks/determinism facts onto the AST
    model, from the same scanner the lite frontend uses (see module doc).

    Functions are matched by (file, qualname, is_definition); call sites by
    (callee name, line). The AST-native deterministic flag is kept as a
    union — when LQS_DETERMINISTIC expands to the annotate attribute both
    sources agree, and when a build defines it empty (GCC) the lexical
    marker is the only witness.
    """
    lite_model, _ = frontend_lite.parse_files(list(paths))
    model.classes.extend(lite_model.classes)
    model.lock_ranks.update(lite_model.lock_ranks)
    model.unordered_names.update(lite_model.unordered_names)
    model.ptr_keyed_names.update(lite_model.ptr_keyed_names)

    by_key: Dict[Tuple[str, str, bool], FunctionInfo] = {}
    for fn in model.functions:
        by_key.setdefault((fn.file, fn.qualname, fn.is_definition), fn)
    for lite_fn in lite_model.functions:
        fn = by_key.get(
            (lite_fn.file, lite_fn.qualname, lite_fn.is_definition))
        if fn is None:
            continue
        fn.deterministic = fn.deterministic or lite_fn.deterministic
        fn.requires = list(lite_fn.requires)
        fn.acquires = list(lite_fn.acquires)
        fn.hazards = list(lite_fn.hazards)
        fn.local_mutexes = list(lite_fn.local_mutexes)
        held_at = {(c.name, c.line): c.held for c in lite_fn.calls if c.held}
        for call in fn.calls:
            held = held_at.get((call.name, call.line))
            if held:
                call.held = list(held)
