#!/usr/bin/env python3
"""lqs-verify: call-graph static analysis for the LQS tree.

Five checkers over one source model (see DESIGN.md §12/§14):

  status       every call to a lqs::Status / lqs::StatusOr-returning
               function must consult its result. [[nodiscard]] +
               -Werror=unused-result catch plain discards at compile time;
               this checker additionally flags (void)-casts and
               assigned-but-never-consulted results.
  noalloc      functions annotated LQS_NOALLOC must not reach an allocation
               through any non-virtual call chain. LQS_ALLOC_OK("why")
               marks a deliberate boundary; a comment form silences one
               call site.
  layering     the src/ dependency DAG: no upward includes, no cycles.
  locks        every lqs::Mutex in src/ carries a named lock_rank;
               acquisition chains are strictly rank-increasing; no blocking
               call is reachable under a lock; mutable members of
               mutex-owning classes are GUARDED_BY-annotated.
               Escapes: // lqs-verify: lock-ok(reason) / guard-ok(reason).
  determinism  LQS_DETERMINISTIC functions must not transitively reach
               wall-clock time, std::rand/std::random_device, environment
               reads, or unordered/pointer-keyed container iteration
               (seeded lqs::Rng and VirtualClock are sanctioned).
               Escape: // lqs-verify: det-ok(reason).

Frontends: `clang` (libclang via clang.cindex, preferred when available)
and `lite` (built-in structural scanner, always available, pinned by the
fixture suite). `auto` picks clang when loadable, else lite.

Exit codes: 0 clean, 1 findings, 2 parse/usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checks  # noqa: E402
import frontend_lite  # noqa: E402
from model import Finding  # noqa: E402

# Directories scanned relative to --root. build trees are never walked.
_SOURCE_DIRS = ("src", "tests", "bench", "examples")
_EXTENSIONS = (".h", ".cc")


def collect_sources(root: str) -> List[str]:
    found: List[str] = []
    for rel in _SOURCE_DIRS:
        top = os.path.join(root, rel)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [d for d in dirnames
                           if d != "build" and not d.startswith("build-")]
            for name in sorted(filenames):
                if name.endswith(_EXTENSIONS):
                    found.append(os.path.join(dirpath, name))
    return sorted(found)


def build_model(paths: List[str], frontend: str, root: str,
                compile_commands: Optional[str],
                notices: List[str]) -> tuple:
    """Returns (model, errors, frontend_used)."""
    if frontend in ("auto", "clang"):
        try:
            import frontend_clang
            model, errors = frontend_clang.parse_files(
                paths, root=root, compile_commands=compile_commands)
            return model, errors, "clang"
        except Exception as err:  # FrontendUnavailable or import failure
            if frontend == "clang":
                raise SystemExit(
                    f"lqs-verify: clang frontend requested but unavailable: "
                    f"{err}")
            notices.append(
                f"lqs-verify: libclang unavailable ({err}); "
                f"using built-in frontend")
    model, errors = frontend_lite.parse_files(paths)
    return model, errors, "lite"


def run(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lqs_verify",
        description="Static analysis gates for the LQS tree.")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for the clang frontend "
                             "(default: <root>/build/compile_commands.json "
                             "if present)")
    parser.add_argument("--frontend", choices=("auto", "clang", "lite"),
                        default="auto")
    parser.add_argument("--checks", "--check",
                        default="status,noalloc,layering,locks,determinism",
                        help="comma-separated subset of "
                             "status,noalloc,layering,locks,determinism")
    parser.add_argument("--pairing-file", default=None,
                        help="test source whose LQS_NOALLOC_PAIRED markers "
                             "must match the annotation set (default: "
                             "<root>/tests/estimator_alloc_test.cc)")
    parser.add_argument("--no-pairing", action="store_true",
                        help="skip the annotation/runtime-test pairing "
                             "cross-check")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("files", nargs="*",
                        help="analyze only these files (layering still "
                             "walks the whole tree for cycle detection)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    enabled = {c.strip() for c in args.checks.split(",") if c.strip()}
    unknown = enabled - {"status", "noalloc", "layering", "locks",
                         "determinism"}
    if unknown:
        print(f"lqs-verify: unknown checks: {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    compile_commands = args.compile_commands
    if compile_commands is None:
        default_cc = os.path.join(root, "build", "compile_commands.json")
        if os.path.exists(default_cc):
            compile_commands = default_cc

    paths = [os.path.abspath(p) for p in args.files] or collect_sources(root)
    if not paths:
        print(f"lqs-verify: no sources under {root}", file=sys.stderr)
        return 2

    notices: List[str] = []
    model, errors, frontend_used = build_model(
        paths, args.frontend, root, compile_commands, notices)
    for notice in notices:
        print(notice, file=sys.stderr)

    findings: List[Finding] = []
    if "status" in enabled:
        findings.extend(checks.check_status(model))
    if "noalloc" in enabled:
        pairing_file = args.pairing_file
        if pairing_file is None and not args.no_pairing:
            default_pairing = os.path.join(root, "tests",
                                           "estimator_alloc_test.cc")
            if os.path.exists(default_pairing):
                pairing_file = default_pairing
        # Required-root presence is a whole-tree property, like determinism.
        findings.extend(checks.check_noalloc(
            model, pairing_file=None if args.no_pairing else pairing_file,
            root=root,
            required=None if args.files else checks.REQUIRED_NOALLOC))
    if "layering" in enabled:
        findings.extend(checks.check_layering(model, root))
    if "locks" in enabled:
        findings.extend(checks.check_locks(model, root))
    if "determinism" in enabled:
        # Required-root presence is a whole-tree property; file-scoped runs
        # only check the chains of the markers they can see.
        findings.extend(checks.check_determinism(
            model, root=root,
            required=None if args.files else checks.REQUIRED_DETERMINISTIC))

    findings.sort(key=lambda f: (f.file, f.line, f.check, f.message))

    if args.json:
        print(json.dumps({
            "frontend": frontend_used,
            "files": len(paths),
            "findings": [dataclass_dict(f) for f in findings],
            "parse_errors": errors,
        }, indent=2))
    else:
        for finding in findings:
            rel = os.path.relpath(finding.file, root)
            print(Finding(finding.check, rel, finding.line, finding.message,
                          finding.chain).render())
        for err in errors:
            print(f"lqs-verify: parse error: {err}", file=sys.stderr)
        print(f"lqs-verify: {frontend_used} frontend, {len(paths)} files, "
              f"{len(findings)} finding(s), {len(errors)} parse error(s)",
              file=sys.stderr)

    if errors:
        return 2
    return 1 if findings else 0


def dataclass_dict(finding: Finding) -> dict:
    return {"check": finding.check, "file": finding.file,
            "line": finding.line, "message": finding.message,
            "chain": finding.chain}


if __name__ == "__main__":
    sys.exit(run())
