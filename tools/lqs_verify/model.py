"""Shared IR for lqs-verify's frontends and checkers.

Both frontends (frontend_clang via libclang, frontend_lite via the built-in
tokenizer) lower C++ sources into this model; the three checkers in
checks.py consume only the model, so their findings are frontend-agnostic.

The model is deliberately small: functions with their call sites and
allocation sites, the include graph, and comment-level suppressions. It is
exactly the information the three checkers need — not a general AST.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Set, Tuple


@dataclasses.dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str  # simple callee name, e.g. "EstimateInto"
    line: int
    is_method_call: bool = False  # x.f(...) or x->f(...)
    qualifier: Optional[str] = None  # "Class" for Class::f(...)
    # The call is a full expression statement whose value is dropped.
    discarded: bool = False
    # The drop was explicit: (void)f(...).
    void_cast: bool = False
    # `T v = f(...);` / `auto v = f(...);`: the variable name, else None.
    assigned_to: Optional[str] = None
    # When assigned_to is set: the variable appears again later in the body.
    consulted: bool = True


@dataclasses.dataclass
class AllocSite:
    """One lexical allocating operation inside a function body."""

    kind: str  # "new" | "alloc-fn" | "container"
    what: str  # e.g. "operator new", "malloc", "push_back"
    line: int


@dataclasses.dataclass
class FunctionInfo:
    """One function declaration or definition."""

    name: str  # simple name
    qualname: str  # "Class::Name" or "Name"
    file: str
    line: int
    is_definition: bool = False
    is_virtual: bool = False
    returns_status: bool = False  # return type mentions Status/StatusOr
    noalloc: bool = False  # carries LQS_NOALLOC
    # LQS_ALLOC_OK justification; None = not annotated, "" = annotated with
    # an empty justification (itself a finding).
    alloc_ok: Optional[str] = None
    calls: List[CallSite] = dataclasses.field(default_factory=list)
    allocs: List[AllocSite] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class Suppression:
    kind: str  # "alloc-ok" | "status-ok"
    justification: str
    line: int


@dataclasses.dataclass
class SourceModel:
    """Everything the checkers consume, for one analyzed file set."""

    # All function decls/defs, in file order.
    functions: List[FunctionInfo] = dataclasses.field(default_factory=list)
    # file -> [(line, include-path-as-written)] for quoted includes.
    includes: Dict[str, List[Tuple[int, str]]] = dataclasses.field(
        default_factory=dict)
    # file -> line -> Suppression (comment escapes).
    suppressions: Dict[str, Dict[int, Suppression]] = dataclasses.field(
        default_factory=dict)
    # Simple names of functions whose return type is Status/StatusOr.
    status_names: Set[str] = dataclasses.field(default_factory=set)

    def merge(self, other: "SourceModel") -> None:
        self.functions.extend(other.functions)
        self.includes.update(other.includes)
        self.suppressions.update(other.suppressions)
        self.status_names.update(other.status_names)

    def definitions_by_name(self) -> Dict[str, List[FunctionInfo]]:
        index: Dict[str, List[FunctionInfo]] = {}
        for fn in self.functions:
            if fn.is_definition:
                index.setdefault(fn.name, []).append(fn)
        return index

    def suppression_for(self, path: str, line: int,
                        kind: str) -> Optional[Suppression]:
        """Suppression on `line` or the line directly above it."""
        per_file = self.suppressions.get(path, {})
        for candidate in (line, line - 1):
            sup = per_file.get(candidate)
            if sup is not None and sup.kind == kind:
                return sup
        return None


@dataclasses.dataclass
class Finding:
    """One diagnostic. `check` is the checker id; `chain` the call chain
    (noalloc) or empty."""

    check: str  # "status" | "noalloc" | "layering"
    file: str
    line: int
    message: str
    chain: List[str] = dataclasses.field(default_factory=list)

    def render(self) -> str:
        text = f"{self.file}:{self.line}: [{self.check}] {self.message}"
        if self.chain:
            text += "\n    call chain: " + " -> ".join(self.chain)
        return text


# ---------------------------------------------------------------------------
# Comment suppressions are parsed from raw text, uniformly for every
# frontend: libclang drops comments from the AST, and the escape hatch must
# behave identically whichever frontend parsed the file.

_ALLOC_OK_COMMENT = re.compile(
    r'(?://|/\*).*?LQS_ALLOC_OK\(\s*"((?:[^"\\]|\\.)*)"\s*\)')
_STATUS_OK_COMMENT = re.compile(
    r'(?://|/\*).*?lqs-verify:\s*status-ok\(([^)]*)\)')
# An LQS_ALLOC_OK in a comment with no ("...") argument at all — catches
# `// LQS_ALLOC_OK` and `// LQS_ALLOC_OK()`, which must not silently count
# as a justified escape. Prose mentions like "LQS_ALLOC_OK-annotated" in
# doc comments are not suppressions.
_ALLOC_OK_BARE = re.compile(r'(?://|/\*).*?LQS_ALLOC_OK(?![\w-])(?!\(\s*")')


def scan_suppressions(path: str, text: str) -> Dict[int, Suppression]:
    """Extract comment-level escape hatches, keyed by 1-based line."""
    found: Dict[int, Suppression] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _ALLOC_OK_COMMENT.search(line)
        if match:
            found[lineno] = Suppression("alloc-ok", match.group(1).strip(),
                                        lineno)
            continue
        if _ALLOC_OK_BARE.search(line):
            found[lineno] = Suppression("alloc-ok", "", lineno)
            continue
        match = _STATUS_OK_COMMENT.search(line)
        if match:
            found[lineno] = Suppression("status-ok", match.group(1).strip(),
                                        lineno)
    return found


_INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def scan_includes(text: str) -> List[Tuple[int, str]]:
    """Quoted includes with their 1-based line numbers."""
    result = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _INCLUDE.match(line)
        if match:
            result.append((lineno, match.group(1)))
    return result
