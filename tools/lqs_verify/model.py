"""Shared IR for lqs-verify's frontends and checkers.

Both frontends (frontend_clang via libclang, frontend_lite via the built-in
tokenizer) lower C++ sources into this model; the three checkers in
checks.py consume only the model, so their findings are frontend-agnostic.

The model is deliberately small: functions with their call sites,
allocation sites, lock-acquisition sites, and determinism hazards; the
include graph; per-class concurrency state (mutex members and their
GUARDED_BY coverage); the lock_rank registry; and comment-level
suppressions. It is exactly the information the five checkers need — not a
general AST.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Set, Tuple


@dataclasses.dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str  # simple callee name, e.g. "EstimateInto"
    line: int
    is_method_call: bool = False  # x.f(...) or x->f(...)
    qualifier: Optional[str] = None  # "Class" for Class::f(...)
    # The call is a full expression statement whose value is dropped.
    discarded: bool = False
    # The drop was explicit: (void)f(...).
    void_cast: bool = False
    # `T v = f(...);` / `auto v = f(...);`: the variable name, else None.
    assigned_to: Optional[str] = None
    # When assigned_to is set: the variable appears again later in the body.
    consulted: bool = True
    # Names of lqs::Mutex objects lexically held at the call site (MutexLock
    # scopes and explicit Lock()/Unlock() pairs; REQUIRES-implied locks are
    # added by the checker, which sees all declarations of the caller).
    held: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class AllocSite:
    """One lexical allocating operation inside a function body."""

    kind: str  # "new" | "alloc-fn" | "container"
    what: str  # e.g. "operator new", "malloc", "push_back"
    line: int


@dataclasses.dataclass
class AcquireSite:
    """One lock acquisition inside a function body.

    kind "lock" covers `MutexLock l(&mu_)` scopes and explicit `mu_.Lock()`;
    kind "wait" is `cv_.Wait(&mu_)` — a blocking re-acquisition of `mutex`
    that must not happen while any *other* lock is held.
    """

    mutex: str  # simple name of the mutex object, e.g. "stats_mu_"
    kind: str  # "lock" | "wait"
    line: int
    # Mutex names lexically held when this acquisition happens.
    held: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class HazardSite:
    """One lexical determinism hazard inside a function body.

    kinds: "wall-clock" (steady_clock::now, time, ...), "rand" (std::rand,
    std::random_device, mt19937, ...), "env" (getenv family), "iter"
    (range-for or begin()/end() over a named container — the checker
    resolves `what` against the model-wide unordered / pointer-keyed
    container registries; unregistered names are not hazards).
    """

    kind: str  # "wall-clock" | "rand" | "env" | "iter"
    what: str  # e.g. "steady_clock::now", "rand", container member name
    line: int


@dataclasses.dataclass
class MutexMember:
    """One owned lqs::Mutex — a class member or a function-local object."""

    name: str
    line: int
    has_init: bool = False
    # `lock_rank::kFoo` (or a bare named constant) from the first
    # constructor argument; None when default-constructed or numeric.
    rank_name: Optional[str] = None
    # A numeric-literal first argument (itself a finding in src/).
    rank_literal: Optional[int] = None


@dataclasses.dataclass
class FieldMember:
    """One data member of a mutex-owning class (coverage rule input)."""

    name: str
    line: int
    guarded_by: Optional[str] = None  # LQS_GUARDED_BY target, "" if empty
    is_const: bool = False  # immutable after construction
    is_static: bool = False
    # Synchronization primitive or internally-synchronized type (Mutex,
    # CondVar, std::atomic): exempt from the coverage rule by construction.
    is_sync: bool = False


@dataclasses.dataclass
class ClassConcurrency:
    """Concurrency-relevant state of one class that owns an lqs::Mutex."""

    name: str
    file: str
    line: int
    mutexes: List[MutexMember] = dataclasses.field(default_factory=list)
    fields: List[FieldMember] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class FunctionInfo:
    """One function declaration or definition."""

    name: str  # simple name
    qualname: str  # "Class::Name" or "Name"
    file: str
    line: int
    is_definition: bool = False
    is_virtual: bool = False
    returns_status: bool = False  # return type mentions Status/StatusOr
    noalloc: bool = False  # carries LQS_NOALLOC
    # LQS_ALLOC_OK justification; None = not annotated, "" = annotated with
    # an empty justification (itself a finding).
    alloc_ok: Optional[str] = None
    deterministic: bool = False  # carries LQS_DETERMINISTIC
    # LQS_REQUIRES(...) mutex names (annotation usually lives on the header
    # declaration; checkers merge decls and defs by qualname).
    requires: List[str] = dataclasses.field(default_factory=list)
    calls: List[CallSite] = dataclasses.field(default_factory=list)
    allocs: List[AllocSite] = dataclasses.field(default_factory=list)
    acquires: List[AcquireSite] = dataclasses.field(default_factory=list)
    hazards: List[HazardSite] = dataclasses.field(default_factory=list)
    # Function-local `Mutex m(rank, ...)` declarations (rank rule input).
    local_mutexes: List[MutexMember] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class Suppression:
    kind: str  # "alloc-ok" | "status-ok" | "lock-ok" | "guard-ok" | "det-ok"
    justification: str
    line: int


@dataclasses.dataclass
class SourceModel:
    """Everything the checkers consume, for one analyzed file set."""

    # All function decls/defs, in file order.
    functions: List[FunctionInfo] = dataclasses.field(default_factory=list)
    # file -> [(line, include-path-as-written)] for quoted includes.
    includes: Dict[str, List[Tuple[int, str]]] = dataclasses.field(
        default_factory=dict)
    # file -> line -> Suppression (comment escapes).
    suppressions: Dict[str, Dict[int, Suppression]] = dataclasses.field(
        default_factory=dict)
    # Simple names of functions whose return type is Status/StatusOr.
    status_names: Set[str] = dataclasses.field(default_factory=set)
    # Classes owning at least one lqs::Mutex member, with coverage state.
    classes: List[ClassConcurrency] = dataclasses.field(default_factory=list)
    # The lock_rank registry: named rank -> value, merged across files.
    lock_ranks: Dict[str, int] = dataclasses.field(default_factory=dict)
    # Declared names of std::unordered_* containers, model-wide (a header
    # declares the member, a .cc iterates it).
    unordered_names: Set[str] = dataclasses.field(default_factory=set)
    # Declared names of ordered containers keyed on a pointer type.
    ptr_keyed_names: Set[str] = dataclasses.field(default_factory=set)

    def merge(self, other: "SourceModel") -> None:
        self.functions.extend(other.functions)
        self.includes.update(other.includes)
        self.suppressions.update(other.suppressions)
        self.status_names.update(other.status_names)
        self.classes.extend(other.classes)
        self.lock_ranks.update(other.lock_ranks)
        self.unordered_names.update(other.unordered_names)
        self.ptr_keyed_names.update(other.ptr_keyed_names)

    def definitions_by_name(self) -> Dict[str, List[FunctionInfo]]:
        index: Dict[str, List[FunctionInfo]] = {}
        for fn in self.functions:
            if fn.is_definition:
                index.setdefault(fn.name, []).append(fn)
        return index

    def suppression_for(self, path: str, line: int,
                        kind: str) -> Optional[Suppression]:
        """Suppression on `line` or the line directly above it."""
        per_file = self.suppressions.get(path, {})
        for candidate in (line, line - 1):
            sup = per_file.get(candidate)
            if sup is not None and sup.kind == kind:
                return sup
        return None


@dataclasses.dataclass
class Finding:
    """One diagnostic. `check` is the checker id; `chain` the call chain
    (noalloc) or empty."""

    check: str  # "status" | "noalloc" | "layering" | "locks" | "determinism"
    file: str
    line: int
    message: str
    chain: List[str] = dataclasses.field(default_factory=list)

    def render(self) -> str:
        text = f"{self.file}:{self.line}: [{self.check}] {self.message}"
        if self.chain:
            text += "\n    call chain: " + " -> ".join(self.chain)
        return text


# ---------------------------------------------------------------------------
# Comment suppressions are parsed from raw text, uniformly for every
# frontend: libclang drops comments from the AST, and the escape hatch must
# behave identically whichever frontend parsed the file.

_ALLOC_OK_COMMENT = re.compile(
    r'(?://|/\*).*?LQS_ALLOC_OK\(\s*"((?:[^"\\]|\\.)*)"\s*\)')
_VERIFY_COMMENT = re.compile(
    r'(?://|/\*).*?lqs-verify:\s*'
    r'(status-ok|lock-ok|guard-ok|det-ok)\(([^)]*)\)')
# An LQS_ALLOC_OK in a comment with no ("...") argument at all — catches
# `// LQS_ALLOC_OK` and `// LQS_ALLOC_OK()`, which must not silently count
# as a justified escape. Prose mentions like "LQS_ALLOC_OK-annotated" in
# doc comments are not suppressions.
_ALLOC_OK_BARE = re.compile(r'(?://|/\*).*?LQS_ALLOC_OK(?![\w-])(?!\(\s*")')


def scan_suppressions(path: str, text: str) -> Dict[int, Suppression]:
    """Extract comment-level escape hatches, keyed by 1-based line."""
    found: Dict[int, Suppression] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _ALLOC_OK_COMMENT.search(line)
        if match:
            found[lineno] = Suppression("alloc-ok", match.group(1).strip(),
                                        lineno)
            continue
        if _ALLOC_OK_BARE.search(line):
            found[lineno] = Suppression("alloc-ok", "", lineno)
            continue
        match = _VERIFY_COMMENT.search(line)
        if match:
            found[lineno] = Suppression(match.group(1),
                                        match.group(2).strip(), lineno)
    return found


_INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def scan_includes(text: str) -> List[Tuple[int, str]]:
    """Quoted includes with their 1-based line numbers."""
    result = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _INCLUDE.match(line)
        if match:
            result.append((lineno, match.group(1)))
    return result


# Raw-text scan of the lock_rank registry, shared by both frontends (the
# constants are plain `inline constexpr int` in a named namespace — no AST
# needed, and the lite frontend must see exactly the same registry).
_RANK_CONSTANT = re.compile(
    r'^\s*(?:inline\s+)?constexpr\s+int\s+(k\w+)\s*=\s*(\d+)\s*;')


def scan_lock_ranks(text: str) -> Dict[str, int]:
    """`lock_rank` registry entries in `text`, name -> value."""
    if "namespace lock_rank" not in text:
        return {}
    ranks: Dict[str, int] = {}
    for line in text.splitlines():
        match = _RANK_CONSTANT.match(line)
        if match:
            ranks[match.group(1)] = int(match.group(2))
    return ranks
