#!/usr/bin/env python3
"""Fixture suite for lqs-verify, run under ctest as `lqs_verify_fixtures`.

Pins each checker's exact findings on the seeded-violation corpus in
testdata/ (the positive cases) and the clean constructs around them (the
negative cases), plus the annotation/runtime-test pairing in both
directions against the real tree. The built-in frontend is the reference
implementation these tests define; the libclang frontend, when available,
must agree with it on the checkers' inputs.

Fixture lines are located by unique substrings, not hard-coded numbers, so
fixtures can be edited without renumbering the suite.
"""

import os
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import checks  # noqa: E402
import frontend_lite  # noqa: E402
import lqs_verify  # noqa: E402

TESTDATA = os.path.join(HERE, "testdata")
REPO_ROOT = os.path.abspath(os.path.join(HERE, "..", ".."))


def line_of(path, needle):
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if needle in line:
                return lineno
    raise AssertionError(f"{needle!r} not found in {path}")


def parse(*paths):
    model, errors = frontend_lite.parse_files(list(paths))
    if errors:
        raise AssertionError(f"fixture parse errors: {errors}")
    return model


class StatusFixtureTest(unittest.TestCase):
    FIXTURE = os.path.join(TESTDATA, "status_fixture.cc")

    def setUp(self):
        self.findings = checks.check_status(parse(self.FIXTURE))
        self.lines = {f.line for f in self.findings}

    def test_exact_finding_count(self):
        self.assertEqual(len(self.findings), 4,
                         [f.render() for f in self.findings])

    def test_plain_discard_flagged(self):
        line = line_of(self.FIXTURE, 'Connect("a")')
        self.assertIn(line, self.lines)
        (finding,) = [f for f in self.findings if f.line == line]
        self.assertIn("discarded", finding.message)
        self.assertIn("Connect", finding.message)

    def test_void_cast_flagged(self):
        line = line_of(self.FIXTURE, '(void)Connect("b")')
        (finding,) = [f for f in self.findings if f.line == line]
        self.assertIn("(void)-cast", finding.message)

    def test_bound_never_consulted_flagged(self):
        line = line_of(self.FIXTURE, "Status dangling")
        (finding,) = [f for f in self.findings if f.line == line]
        self.assertIn("never consulted", finding.message)
        self.assertIn("'dangling'", finding.message)

    def test_empty_suppression_reason_flagged(self):
        line = line_of(self.FIXTURE, "status-ok()")
        (finding,) = [f for f in self.findings if f.line == line]
        self.assertIn("non-empty reason", finding.message)

    def test_clean_cases_not_flagged(self):
        for needle in ('Connect("d")', "teardown; failure",
                       "SideEffectOnly()", 'holder.status = Connect("e")'):
            self.assertNotIn(line_of(self.FIXTURE, needle), self.lines,
                             f"clean case flagged: {needle}")


class NoallocFixtureTest(unittest.TestCase):
    FIXTURE = os.path.join(TESTDATA, "noalloc_fixture.cc")

    def setUp(self):
        self.findings = checks.check_noalloc(parse(self.FIXTURE))

    def of_root(self, root):
        return [f for f in self.findings if f"'{root}'" in f.message]

    def test_exact_finding_count(self):
        self.assertEqual(len(self.findings), 5,
                         [f.render() for f in self.findings])

    def test_two_deep_chain_reported_with_full_chain(self):
        (finding,) = self.of_root("DeepRoot")
        self.assertEqual(finding.line, line_of(self.FIXTURE, "new int(7)"))
        self.assertIn("operator new", finding.message)
        self.assertIn("'Leaf'", finding.message)
        # DeepRoot -> Middle -> Leaf -> operator new, each with file:line.
        self.assertEqual(len(finding.chain), 4)
        self.assertIn("DeepRoot", finding.chain[0])
        self.assertIn("Middle", finding.chain[1])
        self.assertIn("Leaf", finding.chain[2])
        self.assertIn("operator new", finding.chain[3])

    def test_direct_container_growth_reported(self):
        (finding,) = self.of_root("GrowDirect")
        self.assertIn("push_back", finding.message)

    def test_alloc_ok_boundary_stops_traversal(self):
        self.assertEqual(self.of_root("ThroughBoundary"), [])
        # The boundary's own body is behind the escape, not analyzed.
        self.assertFalse(
            [f for f in self.findings if "SizingBoundary" in f.message])

    def test_line_suppression_with_reason_is_clean(self):
        self.assertEqual(self.of_root("SuppressedLine"), [])

    def test_empty_line_suppression_is_a_finding(self):
        line = line_of(self.FIXTURE, "LQS_ALLOC_OK()")
        (finding,) = [f for f in self.findings if f.line == line]
        self.assertIn("non-empty justification", finding.message)
        # ...and it replaces (not duplicates) the allocation finding.
        self.assertEqual(len(self.of_root("EmptySuppression")), 0)

    def test_virtual_calls_not_followed(self):
        self.assertEqual(self.of_root("ThroughVirtual"), [])

    def test_conflicting_annotations_flagged(self):
        (finding,) = self.of_root("Conflicted")
        self.assertIn("both LQS_NOALLOC and LQS_ALLOC_OK", finding.message)

    def test_empty_function_level_justification_flagged(self):
        (finding,) = self.of_root("Unjustified")
        self.assertIn("non-empty justification", finding.message)


class PairingTest(unittest.TestCase):
    """The LQS_NOALLOC <-> runtime-test pairing, both directions, against
    the real headers and the real allocation test."""

    HEADERS = [
        os.path.join(REPO_ROOT, "src", "lqs", "estimator.h"),
        os.path.join(REPO_ROOT, "src", "lqs", "bounds.h"),
        os.path.join(REPO_ROOT, "src", "monitor", "monitor_service.h"),
    ]
    PAIRING = os.path.join(REPO_ROOT, "tests", "estimator_alloc_test.cc")

    def test_tree_annotations_and_markers_agree(self):
        findings = checks.check_noalloc(parse(*self.HEADERS),
                                        pairing_file=self.PAIRING)
        self.assertEqual(findings, [], [f.render() for f in findings])

    def test_removing_an_annotation_orphans_its_marker(self):
        # Simulates the acceptance scenario: revert LQS_NOALLOC from
        # EstimateInto and the static-analysis job must fail.
        def read_text(path):
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            if path.endswith("estimator.h"):
                text = text.replace("LQS_NOALLOC void EstimateInto",
                                    "void EstimateInto")
            return text

        model, errors = frontend_lite.parse_files(list(self.HEADERS),
                                                  read_text=read_text)
        self.assertEqual(errors, [])
        findings = checks.check_noalloc(model, pairing_file=self.PAIRING)
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        self.assertIn("no such annotation exists", findings[0].message)
        self.assertIn("ProgressEstimator::EstimateInto",
                      findings[0].message)

    def test_removing_a_marker_orphans_its_annotation(self):
        with open(self.PAIRING, "r", encoding="utf-8") as handle:
            text = handle.read()
        text = text.replace(
            "// LQS_NOALLOC_PAIRED: MonitorService::ComputeStatus", "//")
        findings = checks.check_noalloc(parse(*self.HEADERS),
                                        pairing_file=self.PAIRING,
                                        pairing_text=text)
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        self.assertIn("no paired runtime check", findings[0].message)
        self.assertIn("MonitorService::ComputeStatus", findings[0].message)


class LayeringFixtureTest(unittest.TestCase):
    ROOT = os.path.join(TESTDATA, "layering")

    def test_upward_include_is_the_only_finding(self):
        files = []
        for dirpath, _, names in os.walk(self.ROOT):
            files.extend(os.path.join(dirpath, n) for n in names)
        findings = checks.check_layering(parse(*files), self.ROOT)
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        bad = os.path.join(self.ROOT, "src", "common", "clock.h")
        self.assertEqual(findings[0].file, bad)
        self.assertEqual(findings[0].line, line_of(bad, "lqs/progress.h"))
        self.assertIn("may not include 'lqs/progress.h'",
                      findings[0].message)


class CycleFixtureTest(unittest.TestCase):
    ROOT = os.path.join(TESTDATA, "cycle")

    def test_include_cycle_reported_once(self):
        alpha = os.path.join(self.ROOT, "src", "common", "alpha.h")
        beta = os.path.join(self.ROOT, "src", "common", "beta.h")
        findings = checks.check_layering(parse(alpha, beta), self.ROOT)
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        self.assertIn("include cycle:", findings[0].message)
        self.assertIn("alpha.h", findings[0].message)
        self.assertIn("beta.h", findings[0].message)


class LayerConfigTest(unittest.TestCase):
    def test_default_layers_are_acyclic(self):
        self.assertIsNone(checks._config_cycle(checks.DEFAULT_LAYERS))

    def test_cyclic_config_is_reported(self):
        layers = {"a": {"b"}, "b": {"a"}}
        cycle = checks._config_cycle(layers)
        self.assertEqual(cycle, ["a", "b"])


class DriverTest(unittest.TestCase):
    def test_real_tree_is_clean(self):
        self.assertEqual(
            lqs_verify.run(["--root", REPO_ROOT, "--frontend", "lite"]), 0)

    def test_fixture_violations_exit_nonzero(self):
        code = lqs_verify.run(
            ["--root", TESTDATA, "--frontend", "lite", "--checks", "status",
             "--no-pairing", os.path.join(TESTDATA, "status_fixture.cc")])
        self.assertEqual(code, 1)

    def test_unknown_check_is_a_usage_error(self):
        self.assertEqual(
            lqs_verify.run(["--root", REPO_ROOT, "--checks", "nope"]), 2)


if __name__ == "__main__":
    unittest.main()
