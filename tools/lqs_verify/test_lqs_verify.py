#!/usr/bin/env python3
"""Fixture suite for lqs-verify, run under ctest as `lqs_verify_fixtures`.

Pins each checker's exact findings on the seeded-violation corpus in
testdata/ (the positive cases) and the clean constructs around them (the
negative cases), plus the annotation/runtime-test pairing in both
directions against the real tree. The built-in frontend is the reference
implementation these tests define; the libclang frontend, when available,
must agree with it on the checkers' inputs.

Fixture lines are located by unique substrings, not hard-coded numbers, so
fixtures can be edited without renumbering the suite.
"""

import os
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import checks  # noqa: E402
import frontend_clang  # noqa: E402
import frontend_lite  # noqa: E402
import lqs_verify  # noqa: E402

TESTDATA = os.path.join(HERE, "testdata")
REPO_ROOT = os.path.abspath(os.path.join(HERE, "..", ".."))


def files_under(root):
    found = []
    for dirpath, _, names in os.walk(root):
        found.extend(os.path.join(dirpath, n) for n in names)
    return sorted(found)


def line_of(path, needle):
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if needle in line:
                return lineno
    raise AssertionError(f"{needle!r} not found in {path}")


def parse(*paths):
    model, errors = frontend_lite.parse_files(list(paths))
    if errors:
        raise AssertionError(f"fixture parse errors: {errors}")
    return model


class StatusFixtureTest(unittest.TestCase):
    FIXTURE = os.path.join(TESTDATA, "status_fixture.cc")

    def setUp(self):
        self.findings = checks.check_status(parse(self.FIXTURE))
        self.lines = {f.line for f in self.findings}

    def test_exact_finding_count(self):
        self.assertEqual(len(self.findings), 4,
                         [f.render() for f in self.findings])

    def test_plain_discard_flagged(self):
        line = line_of(self.FIXTURE, 'Connect("a")')
        self.assertIn(line, self.lines)
        (finding,) = [f for f in self.findings if f.line == line]
        self.assertIn("discarded", finding.message)
        self.assertIn("Connect", finding.message)

    def test_void_cast_flagged(self):
        line = line_of(self.FIXTURE, '(void)Connect("b")')
        (finding,) = [f for f in self.findings if f.line == line]
        self.assertIn("(void)-cast", finding.message)

    def test_bound_never_consulted_flagged(self):
        line = line_of(self.FIXTURE, "Status dangling")
        (finding,) = [f for f in self.findings if f.line == line]
        self.assertIn("never consulted", finding.message)
        self.assertIn("'dangling'", finding.message)

    def test_empty_suppression_reason_flagged(self):
        line = line_of(self.FIXTURE, "status-ok()")
        (finding,) = [f for f in self.findings if f.line == line]
        self.assertIn("non-empty reason", finding.message)

    def test_clean_cases_not_flagged(self):
        for needle in ('Connect("d")', "teardown; failure",
                       "SideEffectOnly()", 'holder.status = Connect("e")'):
            self.assertNotIn(line_of(self.FIXTURE, needle), self.lines,
                             f"clean case flagged: {needle}")


class NoallocFixtureTest(unittest.TestCase):
    FIXTURE = os.path.join(TESTDATA, "noalloc_fixture.cc")

    def setUp(self):
        self.findings = checks.check_noalloc(parse(self.FIXTURE))

    def of_root(self, root):
        return [f for f in self.findings if f"'{root}'" in f.message]

    def test_exact_finding_count(self):
        self.assertEqual(len(self.findings), 5,
                         [f.render() for f in self.findings])

    def test_two_deep_chain_reported_with_full_chain(self):
        (finding,) = self.of_root("DeepRoot")
        self.assertEqual(finding.line, line_of(self.FIXTURE, "new int(7)"))
        self.assertIn("operator new", finding.message)
        self.assertIn("'Leaf'", finding.message)
        # DeepRoot -> Middle -> Leaf -> operator new, each with file:line.
        self.assertEqual(len(finding.chain), 4)
        self.assertIn("DeepRoot", finding.chain[0])
        self.assertIn("Middle", finding.chain[1])
        self.assertIn("Leaf", finding.chain[2])
        self.assertIn("operator new", finding.chain[3])

    def test_direct_container_growth_reported(self):
        (finding,) = self.of_root("GrowDirect")
        self.assertIn("push_back", finding.message)

    def test_alloc_ok_boundary_stops_traversal(self):
        self.assertEqual(self.of_root("ThroughBoundary"), [])
        # The boundary's own body is behind the escape, not analyzed.
        self.assertFalse(
            [f for f in self.findings if "SizingBoundary" in f.message])

    def test_line_suppression_with_reason_is_clean(self):
        self.assertEqual(self.of_root("SuppressedLine"), [])

    def test_empty_line_suppression_is_a_finding(self):
        line = line_of(self.FIXTURE, "LQS_ALLOC_OK()")
        (finding,) = [f for f in self.findings if f.line == line]
        self.assertIn("non-empty justification", finding.message)
        # ...and it replaces (not duplicates) the allocation finding.
        self.assertEqual(len(self.of_root("EmptySuppression")), 0)

    def test_virtual_calls_not_followed(self):
        self.assertEqual(self.of_root("ThroughVirtual"), [])

    def test_conflicting_annotations_flagged(self):
        (finding,) = self.of_root("Conflicted")
        self.assertIn("both LQS_NOALLOC and LQS_ALLOC_OK", finding.message)

    def test_empty_function_level_justification_flagged(self):
        (finding,) = self.of_root("Unjustified")
        self.assertIn("non-empty justification", finding.message)


class PairingTest(unittest.TestCase):
    """The LQS_NOALLOC <-> runtime-test pairing, both directions, against
    the real headers and the real allocation test."""

    HEADERS = [
        os.path.join(REPO_ROOT, "src", "lqs", "estimator.h"),
        os.path.join(REPO_ROOT, "src", "lqs", "bounds.h"),
        os.path.join(REPO_ROOT, "src", "ensemble", "ensemble.h"),
        os.path.join(REPO_ROOT, "src", "monitor", "monitor_service.h"),
    ]
    PAIRING = os.path.join(REPO_ROOT, "tests", "estimator_alloc_test.cc")

    def test_tree_annotations_and_markers_agree(self):
        findings = checks.check_noalloc(parse(*self.HEADERS),
                                        pairing_file=self.PAIRING)
        self.assertEqual(findings, [], [f.render() for f in findings])

    def test_removing_an_annotation_orphans_its_marker(self):
        # Simulates the acceptance scenario: revert LQS_NOALLOC from
        # EstimateInto and the static-analysis job must fail.
        def read_text(path):
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            if path.endswith("estimator.h"):
                text = text.replace(
                    "LQS_NOALLOC LQS_DETERMINISTIC void EstimateInto",
                    "LQS_DETERMINISTIC void EstimateInto")
            return text

        model, errors = frontend_lite.parse_files(list(self.HEADERS),
                                                  read_text=read_text)
        self.assertEqual(errors, [])
        findings = checks.check_noalloc(model, pairing_file=self.PAIRING)
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        self.assertIn("no such annotation exists", findings[0].message)
        self.assertIn("ProgressEstimator::EstimateInto",
                      findings[0].message)

    def test_removing_a_marker_orphans_its_annotation(self):
        with open(self.PAIRING, "r", encoding="utf-8") as handle:
            text = handle.read()
        text = text.replace(
            "// LQS_NOALLOC_PAIRED: MonitorService::ComputeStatus", "//")
        findings = checks.check_noalloc(parse(*self.HEADERS),
                                        pairing_file=self.PAIRING,
                                        pairing_text=text)
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        self.assertIn("no paired runtime check", findings[0].message)
        self.assertIn("MonitorService::ComputeStatus", findings[0].message)


class LocksFixtureTest(unittest.TestCase):
    """The 15 seeded locks violations (and the clean constructs around
    them), pinned by unique substrings."""

    ROOT = os.path.join(TESTDATA, "locks")
    BAD_RANKS = os.path.join(ROOT, "src", "monitor", "bad_ranks.h")
    INVERSION = os.path.join(ROOT, "src", "monitor", "inversion.cc")
    BLOCKING = os.path.join(ROOT, "src", "monitor", "blocking.cc")
    COVERAGE = os.path.join(ROOT, "src", "monitor", "coverage.h")

    @classmethod
    def setUpClass(cls):
        cls.findings = checks.check_locks(parse(*files_under(cls.ROOT)),
                                          cls.ROOT)

    def at(self, path, needle):
        line = line_of(path, needle)
        found = [f for f in self.findings
                 if f.file == path and f.line == line]
        self.assertEqual(len(found), 1,
                         f"{needle!r}: {[f.render() for f in found]}")
        return found[0]

    def assert_clean(self, path, needle):
        line = line_of(path, needle)
        hits = [f for f in self.findings
                if f.file == path and f.line == line]
        self.assertEqual(hits, [], [f.render() for f in hits])

    def test_exact_finding_count(self):
        self.assertEqual(len(self.findings), 15,
                         [f.render() for f in self.findings])

    # -- rule (a): construction ranks ------------------------------------
    def test_default_rank_flagged(self):
        finding = self.at(self.BAD_RANKS, "Mutex default_mu_;")
        self.assertIn("default rank", finding.message)
        self.assertIn("default_mu_", finding.message)

    def test_numeric_literal_rank_flagged(self):
        finding = self.at(self.BAD_RANKS, "literal_mu_{42")
        self.assertIn("numeric rank 42", finding.message)

    def test_unregistered_rank_name_flagged(self):
        finding = self.at(self.BAD_RANKS, "lock_rank::kGhost")
        self.assertIn("kGhost", finding.message)
        self.assertIn("not registered", finding.message)

    def test_function_local_literal_rank_flagged(self):
        finding = self.at(self.BAD_RANKS, 'scratch_mu(7, "scratch")')
        self.assertIn("numeric rank 7", finding.message)

    def test_registered_rank_is_clean(self):
        self.assert_clean(self.BAD_RANKS, 'clean_mu_{lock_rank::kInner')

    # -- rule (b): acquisition order -------------------------------------
    def test_lexical_inversion_flagged(self):
        finding = self.at(self.INVERSION, "then_outer(&outer_mu_)")
        self.assertIn("strictly rank-increasing", finding.message)

    def test_equal_rank_nesting_flagged(self):
        finding = self.at(self.INVERSION, "second(&also_outer_mu_)")
        self.assertIn("strictly rank-increasing", finding.message)

    def test_transitive_inversion_carries_the_call_chain(self):
        finding = self.at(self.INVERSION, "TakeOuter() { MutexLock")
        self.assertIn("strictly rank-increasing", finding.message)
        self.assertTrue(any("ChainInversion" in hop for hop in
                            finding.chain), finding.chain)

    def test_increasing_nesting_is_clean(self):
        line = line_of(self.INVERSION, "void CleanNesting")
        clean = [f for f in self.findings
                 if f.file == self.INVERSION and abs(f.line - line) <= 3]
        self.assertEqual(clean, [], [f.render() for f in clean])

    # -- rule (c): blocking under a lock ---------------------------------
    def test_wait_with_another_lock_held_flagged(self):
        # line_of returns the first occurrence — the one inside
        # WaitUnderOther; WaitClean's identical wait comes later.
        finding = self.at(self.BLOCKING, "cv_.Wait(&inner_mu_);")
        self.assertIn("blocking wait must hold only the waited mutex",
                      finding.message)

    def test_wait_on_the_only_held_lock_is_clean(self):
        line = line_of(self.BLOCKING, "void WaitClean")
        clean = [f for f in self.findings
                 if f.file == self.BLOCKING and 0 < f.line - line <= 3]
        self.assertEqual(clean, [], [f.render() for f in clean])

    def test_direct_poll_under_lock_flagged(self):
        finding = self.at(self.BLOCKING, "endpoint->Poll(0)")
        self.assertIn("SnapshotEndpoint::Poll", finding.message)
        self.assertIn("is held", finding.message)

    def test_direct_fanout_under_lock_flagged(self):
        finding = self.at(self.BLOCKING, "pool->ParallelFor(4)")
        self.assertIn("ThreadPool::ParallelFor", finding.message)

    def test_transitive_blocking_carries_the_call_chain(self):
        finding = self.at(self.BLOCKING, "pool->ParallelFor(2)")
        self.assertIn("ThreadPool::ParallelFor", finding.message)
        self.assertTrue(any("TransitiveBlocking" in hop for hop in
                            finding.chain), finding.chain)

    def test_justified_lock_ok_is_clean(self):
        line = line_of(self.BLOCKING, "this mock endpoint returns")
        clean = [f for f in self.findings
                 if f.file == self.BLOCKING and abs(f.line - line) <= 1]
        self.assertEqual(clean, [], [f.render() for f in clean])

    def test_empty_lock_ok_reason_flagged(self):
        finding = self.at(self.BLOCKING, "lock-ok()")
        self.assertIn("non-empty reason", finding.message)

    # -- rule (d): GUARDED_BY coverage -----------------------------------
    def test_unannotated_member_flagged(self):
        finding = self.at(self.COVERAGE, "int unguarded_counter_")
        self.assertIn("no GUARDED_BY annotation", finding.message)
        self.assertIn("unguarded_counter_", finding.message)

    def test_empty_guard_ok_reason_flagged(self):
        finding = self.at(self.COVERAGE, "guard-ok()")
        self.assertIn("non-empty reason", finding.message)

    def test_guard_naming_a_non_member_mutex_flagged(self):
        finding = self.at(self.COVERAGE, "LQS_GUARDED_BY(phantom_mu_)")
        self.assertIn("phantom_mu_", finding.message)
        self.assertIn("not a mutex member", finding.message)

    def test_exempt_members_are_clean(self):
        for needle in ("guarded_counter_ LQS_GUARDED_BY(cover_mu_)",
                       "int excused_counter_",
                       "const int frozen_limit_",
                       "static int shared_default_",
                       "std::atomic<int> atomic_counter_"):
            self.assert_clean(self.COVERAGE, needle)


class DeterminismFixtureTest(unittest.TestCase):
    """The 10 seeded determinism violations (and the clean constructs
    around them), pinned by unique substrings."""

    FIXTURE = os.path.join(TESTDATA, "determinism_fixture.cc")

    @classmethod
    def setUpClass(cls):
        cls.findings = checks.check_determinism(parse(cls.FIXTURE))

    def of_root(self, root):
        return [f for f in self.findings if f"'{root}'" in f.message]

    def test_exact_finding_count(self):
        self.assertEqual(len(self.findings), 10,
                         [f.render() for f in self.findings])

    def test_direct_wall_clock_flagged(self):
        (finding,) = self.of_root("WallClockDirect")
        self.assertIn("reads the wall clock", finding.message)
        self.assertIn("VirtualClock is the sanctioned time source",
                      finding.message)

    def test_transitive_wall_clock_carries_the_chain(self):
        (finding,) = self.of_root("WallClockTransitive")
        self.assertIn("'NowHelper'", finding.message)
        self.assertTrue(any("WallClockTransitive" in hop for hop in
                            finding.chain), finding.chain)

    def test_c_time_api_flagged(self):
        (finding,) = self.of_root("TimeCall")
        self.assertIn("wall clock", finding.message)

    def test_std_rand_flagged(self):
        (finding,) = self.of_root("RandCall")
        self.assertIn("nondeterministic randomness", finding.message)
        self.assertIn("seeded lqs::Rng is the sanctioned source",
                      finding.message)

    def test_random_device_flagged(self):
        (finding,) = self.of_root("EntropyDraw")
        self.assertIn("random_device", finding.message)

    def test_environment_read_flagged(self):
        (finding,) = self.of_root("EnvRead")
        self.assertIn("reads the environment", finding.message)

    def test_unordered_range_for_flagged(self):
        (finding,) = self.of_root("UnorderedRangeFor")
        self.assertIn("unordered container 'hash_index'", finding.message)
        self.assertIn("hash seed", finding.message)

    def test_unordered_begin_flagged(self):
        (finding,) = self.of_root("UnorderedBegin")
        self.assertIn("unordered container 'hash_index'", finding.message)

    def test_pointer_keyed_iteration_flagged(self):
        (finding,) = self.of_root("PtrKeyedIteration")
        self.assertIn("pointer-keyed container 'ptr_ranks'",
                      finding.message)
        self.assertIn("allocation addresses", finding.message)

    def test_empty_det_ok_reason_flagged(self):
        line = line_of(self.FIXTURE, "det-ok()")
        (finding,) = [f for f in self.findings if f.line == line]
        self.assertIn("non-empty reason", finding.message)

    def test_clean_roots_have_no_findings(self):
        for root in ("JustifiedDetOk", "SanctionedSources",
                     "OrderedIteration", "ThroughVirtualTime",
                     "UnmarkedHazards"):
            self.assertEqual(self.of_root(root), [],
                             f"clean root flagged: {root}")


class DeterminismRequiredRootsTest(unittest.TestCase):
    """The LQS_DETERMINISTIC required-root contract against the real
    headers: present today, and reverting any marker is a finding."""

    HEADERS = [
        os.path.join(REPO_ROOT, "src", "lqs", "estimator.h"),
        os.path.join(REPO_ROOT, "src", "lqs", "bounds.h"),
        os.path.join(REPO_ROOT, "src", "ensemble", "ensemble.h"),
        os.path.join(REPO_ROOT, "src", "remote", "wire.h"),
        os.path.join(REPO_ROOT, "src", "monitor", "monitor_service.h"),
    ]

    def findings_with(self, read_text=None):
        model, errors = frontend_lite.parse_files(list(self.HEADERS),
                                                  read_text=read_text)
        self.assertEqual(errors, [])
        return checks.check_determinism(
            model, required=checks.REQUIRED_DETERMINISTIC)

    def strip_marker(self, suffix, before, after):
        def read_text(path):
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            if path.endswith(suffix):
                new = text.replace(before, after)
                assert new != text, f"revert pattern missed in {suffix}"
                return new
            return text
        return read_text

    def test_every_required_root_is_marked(self):
        findings = self.findings_with()
        self.assertEqual(findings, [], [f.render() for f in findings])

    def test_reverting_the_estimator_marker_is_a_finding(self):
        findings = self.findings_with(self.strip_marker(
            "estimator.h",
            "LQS_NOALLOC LQS_DETERMINISTIC void EstimateInto",
            "LQS_NOALLOC void EstimateInto"))
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        self.assertIn("missing its LQS_DETERMINISTIC marker",
                      findings[0].message)
        self.assertIn("ProgressEstimator::EstimateInto",
                      findings[0].message)

    def test_reverting_a_wire_marker_is_a_finding(self):
        findings = self.findings_with(self.strip_marker(
            "wire.h",
            "LQS_DETERMINISTIC\nStatusOr<ProfileSnapshot> DecodeSnapshot",
            "StatusOr<ProfileSnapshot> DecodeSnapshot"))
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        self.assertIn("'DecodeSnapshot'", findings[0].message)

    def test_reverting_the_monitor_marker_is_a_finding(self):
        findings = self.findings_with(self.strip_marker(
            "monitor_service.h",
            "LQS_NOALLOC LQS_DETERMINISTIC void ComputeStatus",
            "LQS_NOALLOC void ComputeStatus"))
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        self.assertIn("MonitorService::ComputeStatus",
                      findings[0].message)

    def test_reverting_the_ensemble_marker_is_a_finding(self):
        findings = self.findings_with(self.strip_marker(
            "ensemble.h",
            "LQS_NOALLOC LQS_DETERMINISTIC void EstimateInto",
            "LQS_NOALLOC void EstimateInto"))
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        self.assertIn("EnsembleEstimator::EstimateInto",
                      findings[0].message)


class NoallocRequiredRootsTest(unittest.TestCase):
    """The LQS_NOALLOC required-root contract, symmetric to the
    determinism one: the zero-allocation estimate paths keep their
    markers, and reverting one is a finding on whole-tree runs."""

    HEADERS = [
        os.path.join(REPO_ROOT, "src", "lqs", "estimator.h"),
        os.path.join(REPO_ROOT, "src", "lqs", "bounds.h"),
        os.path.join(REPO_ROOT, "src", "ensemble", "ensemble.h"),
    ]

    def findings_with(self, read_text=None):
        model, errors = frontend_lite.parse_files(list(self.HEADERS),
                                                  read_text=read_text)
        self.assertEqual(errors, [])
        # No pairing file here: this exercises the required-root half of
        # check_noalloc in isolation (PairingTest covers the other half).
        return checks.check_noalloc(
            model, required=checks.REQUIRED_NOALLOC)

    def strip_marker(self, suffix, before, after):
        def read_text(path):
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            if path.endswith(suffix):
                new = text.replace(before, after)
                assert new != text, f"revert pattern missed in {suffix}"
                return new
            return text
        return read_text

    def test_every_required_root_is_marked(self):
        findings = self.findings_with()
        self.assertEqual(findings, [], [f.render() for f in findings])

    def test_reverting_the_estimator_marker_is_a_finding(self):
        findings = self.findings_with(self.strip_marker(
            "estimator.h",
            "LQS_NOALLOC LQS_DETERMINISTIC void EstimateInto",
            "LQS_DETERMINISTIC void EstimateInto"))
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        self.assertIn("missing its LQS_NOALLOC marker",
                      findings[0].message)
        self.assertIn("ProgressEstimator::EstimateInto",
                      findings[0].message)

    def test_reverting_the_ensemble_marker_is_a_finding(self):
        findings = self.findings_with(self.strip_marker(
            "ensemble.h",
            "LQS_NOALLOC LQS_DETERMINISTIC void EstimateInto",
            "LQS_DETERMINISTIC void EstimateInto"))
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        self.assertIn("EnsembleEstimator::EstimateInto",
                      findings[0].message)


class LocksAnnotationRevertTest(unittest.TestCase):
    """Reverting a PR-7 concurrency annotation must be a coverage
    finding (the acceptance scenario for the locks checker)."""

    SHARDED = os.path.join(REPO_ROOT, "src", "monitor",
                           "sharded_monitor.h")
    # mutex.h contributes the lock_rank registry the fixture ranks
    # resolve against.
    MUTEX = os.path.join(REPO_ROOT, "src", "common", "mutex.h")

    def test_annotated_header_is_clean(self):
        findings = checks.check_locks(parse(self.SHARDED, self.MUTEX),
                                      REPO_ROOT)
        self.assertEqual(findings, [], [f.render() for f in findings])

    def test_reverting_a_guard_annotation_is_a_finding(self):
        def read_text(path):
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            if path.endswith("sharded_monitor.h"):
                new = text.replace(
                    "std::vector<int> poll_divisors_ "
                    "LQS_GUARDED_BY(backpressure_mu_);",
                    "std::vector<int> poll_divisors_;")
                assert new != text, "revert pattern missed"
                return new
            return text

        model, errors = frontend_lite.parse_files(
            [self.SHARDED, self.MUTEX], read_text=read_text)
        self.assertEqual(errors, [])
        findings = checks.check_locks(model, REPO_ROOT)
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        self.assertIn("no GUARDED_BY annotation", findings[0].message)
        self.assertIn("poll_divisors_", findings[0].message)


class FrontendAgreementTest(unittest.TestCase):
    """The libclang frontend, when loadable, must reach the same checker
    verdicts as the built-in reference frontend on the fixture corpus.
    Skipped where libclang is unavailable (the dev container); CI installs
    the wheel and runs these for real."""

    @staticmethod
    def keyed(findings):
        return sorted((f.file, f.line, f.message) for f in findings)

    def assert_agreement(self, files, root, run_checks):
        lite = run_checks(parse(*files))
        clang_model, errors = frontend_clang.parse_files(list(files), root)
        self.assertEqual(errors, [])
        self.assertEqual(self.keyed(run_checks(clang_model)),
                         self.keyed(lite))

    @unittest.skipUnless(frontend_clang.available(), "libclang unavailable")
    def test_locks_fixtures_agree(self):
        root = os.path.join(TESTDATA, "locks")
        self.assert_agreement(files_under(root), root,
                              lambda m: checks.check_locks(m, root))

    @unittest.skipUnless(frontend_clang.available(), "libclang unavailable")
    def test_determinism_fixture_agrees(self):
        fixture = os.path.join(TESTDATA, "determinism_fixture.cc")
        self.assert_agreement([fixture], TESTDATA,
                              checks.check_determinism)


class LayeringFixtureTest(unittest.TestCase):
    ROOT = os.path.join(TESTDATA, "layering")

    def test_seeded_upward_includes_are_the_only_findings(self):
        files = files_under(self.ROOT)
        findings = checks.check_layering(parse(*files), self.ROOT)
        self.assertEqual(len(findings), 2,
                         [f.render() for f in findings])
        by_file = {f.file: f for f in findings}
        bad = os.path.join(self.ROOT, "src", "common", "clock.h")
        self.assertEqual(by_file[bad].line, line_of(bad, "lqs/progress.h"))
        self.assertIn("may not include 'lqs/progress.h'",
                      by_file[bad].message)
        # The ensemble layer may reach down to lqs/ (that include is clean)
        # but not up to monitor/.
        ens = os.path.join(self.ROOT, "src", "ensemble", "robust.h")
        self.assertEqual(by_file[ens].line, line_of(ens, "monitor/service.h"))
        self.assertIn("may not include 'monitor/service.h'",
                      by_file[ens].message)


class CycleFixtureTest(unittest.TestCase):
    ROOT = os.path.join(TESTDATA, "cycle")

    def test_include_cycle_reported_once(self):
        alpha = os.path.join(self.ROOT, "src", "common", "alpha.h")
        beta = os.path.join(self.ROOT, "src", "common", "beta.h")
        findings = checks.check_layering(parse(alpha, beta), self.ROOT)
        self.assertEqual(len(findings), 1,
                         [f.render() for f in findings])
        self.assertIn("include cycle:", findings[0].message)
        self.assertIn("alpha.h", findings[0].message)
        self.assertIn("beta.h", findings[0].message)


class LayerConfigTest(unittest.TestCase):
    def test_default_layers_are_acyclic(self):
        self.assertIsNone(checks._config_cycle(checks.DEFAULT_LAYERS))

    def test_cyclic_config_is_reported(self):
        layers = {"a": {"b"}, "b": {"a"}}
        cycle = checks._config_cycle(layers)
        self.assertEqual(cycle, ["a", "b"])


class DriverTest(unittest.TestCase):
    def test_real_tree_is_clean(self):
        self.assertEqual(
            lqs_verify.run(["--root", REPO_ROOT, "--frontend", "lite"]), 0)

    def test_fixture_violations_exit_nonzero(self):
        code = lqs_verify.run(
            ["--root", TESTDATA, "--frontend", "lite", "--checks", "status",
             "--no-pairing", os.path.join(TESTDATA, "status_fixture.cc")])
        self.assertEqual(code, 1)

    def test_locks_fixture_corpus_exits_nonzero(self):
        code = lqs_verify.run(
            ["--root", os.path.join(TESTDATA, "locks"), "--frontend",
             "lite", "--checks", "locks"])
        self.assertEqual(code, 1)

    def test_determinism_fixture_exits_nonzero(self):
        code = lqs_verify.run(
            ["--root", TESTDATA, "--frontend", "lite", "--checks",
             "determinism",
             os.path.join(TESTDATA, "determinism_fixture.cc")])
        self.assertEqual(code, 1)

    def test_gating_checks_pass_on_the_real_tree(self):
        # The CI gate: locks + determinism alone, whole tree, exit 0.
        self.assertEqual(
            lqs_verify.run(["--root", REPO_ROOT, "--frontend", "lite",
                            "--checks", "locks,determinism"]), 0)

    def test_unknown_check_is_a_usage_error(self):
        self.assertEqual(
            lqs_verify.run(["--root", REPO_ROOT, "--checks", "nope"]), 2)


if __name__ == "__main__":
    unittest.main()
