"""Built-in C++ frontend for lqs-verify: tokenizer + structural scanner.

This is the fallback (and reference) frontend, used whenever the libclang
Python bindings are unavailable (frontend_clang.py is preferred when
`import clang.cindex` succeeds and a libclang shared object can be found).
It is not a C++ parser; it is a structural scanner tuned to this codebase's
style (Google-style headers/sources, no exceptions, no preprocessor
metaprogramming in function bodies) that extracts exactly the facts in
model.SourceModel:

  * function declarations/definitions with qualified names, return types,
    virtual-ness, and the LQS_NOALLOC / LQS_ALLOC_OK / LQS_DETERMINISTIC /
    LQS_REQUIRES annotations,
  * call sites inside bodies, with discard/assignment context and the set
    of lexically-held lqs::Mutex objects (MutexLock scopes, explicit
    Lock()/Unlock() pairs),
  * lock acquisition sites (MutexLock, Lock, CondVar::Wait) and lexical
    allocation sites (operator new, malloc family, growing container
    member calls),
  * determinism hazards (wall-clock reads, std::rand/random_device,
    environment reads, iteration over unordered / pointer-keyed
    containers),
  * per-class concurrency state: lqs::Mutex members with their lock_rank
    construction argument, and every data member's GUARDED_BY coverage,
  * quoted includes, comment-level suppressions, and the lock_rank
    registry (shared helpers in model.py).

Known, deliberate limits (documented in DESIGN.md §12): overloaded
operators and lambdas are analyzed as part of their enclosing function;
calls are resolved by simple name, not overload; template instantiation is
not modeled. The fixture suite in testdata/ pins the exact behavior.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from model import (AcquireSite, AllocSite, CallSite, ClassConcurrency,
                   FieldMember, FunctionInfo, HazardSite, MutexMember,
                   SourceModel, scan_includes, scan_lock_ranks,
                   scan_suppressions)


class FrontendError(Exception):
    pass


# --------------------------------------------------------------------------
# Tokenizer


@dataclasses.dataclass
class Token:
    kind: str  # "id" | "num" | "punct" | "str" | "char"
    text: str
    line: int


_PUNCTS = [
    "->*", "<<=", ">>=", "...", "::", "->", "<=", ">=", "==", "!=", "&&",
    "||", "+=", "-=", "*=", "/=", "|=", "&=", "^=", "%=", "++", "--", "<<",
    ">>",
]


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    i, n, line = 0, len(text), 1
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\v\f":
            i += 1
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            i = n if end < 0 else end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise FrontendError(f"line {line}: unterminated block comment")
            line += text.count("\n", i, end)
            i = end + 2
            continue
        if c == "#" and at_line_start:
            # Preprocessor logical line (with backslash continuations).
            # Includes are collected separately by model.scan_includes.
            while i < n:
                end = text.find("\n", i)
                if end < 0:
                    i = n
                    break
                cont = text[i:end].rstrip().endswith("\\")
                line += 1
                i = end + 1
                if not cont:
                    break
            at_line_start = True
            continue
        at_line_start = False
        if text.startswith('R"', i):
            delim_end = text.find("(", i + 2)
            if delim_end < 0:
                raise FrontendError(f"line {line}: malformed raw string")
            delim = text[i + 2:delim_end]
            closer = ")" + delim + '"'
            end = text.find(closer, delim_end)
            if end < 0:
                raise FrontendError(f"line {line}: unterminated raw string")
            tokens.append(Token("str", text[delim_end + 1:end], line))
            line += text.count("\n", i, end)
            i = end + len(closer)
            continue
        if c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            if j >= n:
                raise FrontendError(f"line {line}: unterminated string")
            tokens.append(Token("str", text[i + 1:j], line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("char", text[i + 1:j], line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._'"):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        for punct in _PUNCTS:
            if text.startswith(punct, i):
                tokens.append(Token("punct", punct, line))
                i += len(punct)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens


def _match_brackets(tokens: List[Token]) -> Dict[int, int]:
    """open index -> close index and close -> open, for () {} []."""
    pairs = {"(": ")", "{": "}", "[": "]"}
    stack: List[Tuple[str, int]] = []
    match: Dict[int, int] = {}
    for i, tok in enumerate(tokens):
        if tok.kind != "punct":
            continue
        if tok.text in pairs:
            stack.append((pairs[tok.text], i))
        elif tok.text in pairs.values():
            if not stack or stack[-1][0] != tok.text:
                raise FrontendError(
                    f"line {tok.line}: unbalanced '{tok.text}'")
            _, open_idx = stack.pop()
            match[open_idx] = i
            match[i] = open_idx
    if stack:
        raise FrontendError(
            f"line {tokens[stack[-1][1]].line}: unclosed "
            f"'{tokens[stack[-1][1]].text}'")
    return match


# --------------------------------------------------------------------------
# Structural scan

_CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "new", "delete", "decltype", "noexcept", "throw", "else", "do",
    "co_await", "co_return", "co_yield", "case", "default", "goto",
    "static_assert", "alignas", "typeid", "using", "requires",
}
_TYPE_KEYWORDS = {
    "void", "int", "double", "float", "char", "bool", "auto", "unsigned",
    "signed", "long", "short", "wchar_t", "char8_t", "char16_t", "char32_t",
}
_NOT_A_CALLEE = _CONTROL_KEYWORDS | _TYPE_KEYWORDS

_SIG_QUALIFIERS = {
    "inline", "static", "constexpr", "consteval", "explicit", "friend",
    "extern", "virtual", "mutable", "typename",
}
_POST_QUALIFIERS = {"const", "noexcept", "override", "final", "mutable"}

_ALLOC_FUNCTIONS = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "posix_memalign", "make_unique", "make_shared",
}
_CONTAINER_GROWTH = {
    "push_back", "emplace_back", "emplace", "emplace_hint", "insert",
    "resize", "reserve", "assign", "append", "push_front", "emplace_front",
}

# Thread-safety annotation macros (src/common/thread_annotations.h). In
# class bodies they decorate member declarations; in signatures the
# attribute-macro skip in _try_function consumes them (LQS_REQUIRES args
# are captured there first).
_ANNOTATION_MACROS = {
    "LQS_GUARDED_BY", "LQS_PT_GUARDED_BY", "LQS_REQUIRES", "LQS_EXCLUDES",
    "LQS_ACQUIRE", "LQS_RELEASE", "LQS_TRY_ACQUIRE", "LQS_ASSERT_CAPABILITY",
    "LQS_RETURN_CAPABILITY", "LQS_ACQUIRED_BEFORE", "LQS_ACQUIRED_AFTER",
    "LQS_CAPABILITY", "LQS_SCOPED_CAPABILITY",
}

# Determinism hazard vocabulary (checks.py `determinism`). Seeded lqs::Rng
# and VirtualClock are the sanctioned sources and never appear here.
_WALLCLOCK_QUALIFIERS = {
    "steady_clock", "system_clock", "high_resolution_clock",
}
_WALLCLOCK_CALLS = {
    "time", "gettimeofday", "clock_gettime", "clock", "localtime", "gmtime",
    "mktime", "timespec_get", "ftime",
}
_RANDOM_IDS = {
    "random_device", "mt19937", "mt19937_64", "default_random_engine",
    "minstd_rand", "minstd_rand0", "ranlux24", "ranlux48",
}
_RAND_CALLS = {"rand", "srand", "rand_r", "drand48", "lrand48", "random"}
_ENV_CALLS = {"getenv", "secure_getenv", "putenv", "setenv"}
_ITER_METHODS = {"begin", "end", "cbegin", "cend", "rbegin", "rend"}

_UNORDERED_CONTAINERS = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
}
_ORDERED_CONTAINERS = {"map", "set", "multimap", "multiset"}


class _FileScanner:
    def __init__(self, path: str, tokens: List[Token]):
        self.path = path
        self.tokens = tokens
        self.match = _match_brackets(tokens)
        self.functions: List[FunctionInfo] = []
        self.classes: List[ClassConcurrency] = []
        self.unordered_names: set = set()
        self.ptr_keyed_names: set = set()
        self._register_containers()

    # -- helpers ------------------------------------------------------------

    def _is(self, i: int, text: str) -> bool:
        return (0 <= i < len(self.tokens) and self.tokens[i].kind == "punct"
                and self.tokens[i].text == text)

    def _id(self, i: int) -> Optional[str]:
        if 0 <= i < len(self.tokens) and self.tokens[i].kind == "id":
            return self.tokens[i].text
        return None

    # -- container-name registration (determinism `iter` hazards) -----------

    def _angle_close(self, open_idx: int) -> Optional[int]:
        """Index just past the `>` matching the `<` at open_idx (handles
        `>>` closing two levels and skips bracketed groups)."""
        depth = 1
        k = open_idx + 1
        while k < len(self.tokens) and depth > 0:
            tok = self.tokens[k]
            if tok.kind == "punct" and tok.text in ("(", "[", "{"):
                k = self.match[k] + 1
                continue
            if tok.kind == "punct" and tok.text == "<":
                depth += 1
            elif tok.kind == "punct" and tok.text == ">":
                depth -= 1
            elif tok.kind == "punct" and tok.text == ">>":
                depth -= 2
            elif tok.kind == "punct" and tok.text == ";":
                return None  # not a template argument list after all
            k += 1
        return k if depth <= 0 else None

    def _register_containers(self) -> None:
        """Record declared names of unordered and pointer-keyed containers.

        These feed the determinism checker: iterating an unordered
        container leaks the hash seed into output order, and iterating an
        ordered container keyed on a pointer leaks allocation addresses.
        The registries are name-based and model-wide (the header declares
        the member, the .cc iterates it)."""
        for i, tok in enumerate(self.tokens):
            if tok.kind != "id":
                continue
            is_unordered = tok.text in _UNORDERED_CONTAINERS
            is_ordered = (tok.text in _ORDERED_CONTAINERS
                          and self._is(i - 1, "::"))
            if not (is_unordered or is_ordered) or not self._is(i + 1, "<"):
                continue
            after = self._angle_close(i + 1)
            if after is None:
                continue
            declared = self._id(after)
            if declared is None:
                continue
            if is_unordered:
                self.unordered_names.add(declared)
                continue
            # Ordered container: pointer-keyed iff the first top-level
            # template argument contains a `*`.
            depth, k = 1, i + 2
            while k < len(self.tokens) and depth > 0:
                t = self.tokens[k]
                if t.kind == "punct" and t.text in ("(", "[", "{"):
                    k = self.match[k] + 1
                    continue
                if t.kind == "punct" and t.text == "<":
                    depth += 1
                elif t.kind == "punct" and t.text == ">":
                    depth -= 1
                elif t.kind == "punct" and t.text == ">>":
                    depth -= 2
                elif t.kind == "punct" and t.text == "," and depth == 1:
                    break
                elif t.kind == "punct" and t.text == "*" and depth == 1:
                    self.ptr_keyed_names.add(declared)
                    break
                k += 1

    # -- scope walk ---------------------------------------------------------

    def scan(self) -> None:
        self._scan_scope(0, len(self.tokens), class_name=None)
        self._scan_classes(0, len(self.tokens))

    def _scan_scope(self, begin: int, end: int,
                    class_name: Optional[str]) -> None:
        i = begin
        while i < end:
            tok = self.tokens[i]
            if tok.kind == "id" and tok.text == "namespace":
                i = self._enter_braced_scope(i, end, class_name)
                continue
            if tok.kind == "id" and tok.text == "enum":
                i = self._skip_enum(i, end)
                continue
            if (tok.kind == "id" and tok.text in ("class", "struct")
                    and self._id(i - 1) != "enum"):
                i = self._enter_class(i, end)
                continue
            if tok.kind == "punct" and tok.text == "(":
                consumed = self._try_function(i, class_name)
                if consumed is not None:
                    i = consumed
                    continue
                i += 1
                continue
            if tok.kind == "punct" and tok.text == "{":
                # Brace not owned by a recognized construct (initializer,
                # operator body, ...): skip it wholesale.
                i = self.match[i] + 1
                continue
            i += 1

    def _enter_braced_scope(self, i: int, end: int,
                            class_name: Optional[str]) -> int:
        j = i + 1
        while j < end and not (self._is(j, "{") or self._is(j, ";")):
            j += 1
        if j >= end or self._is(j, ";"):
            return j + 1
        close = self.match[j]
        self._scan_scope(j + 1, close, class_name)
        return close + 1

    def _skip_enum(self, i: int, end: int) -> int:
        j = i + 1
        while j < end and not (self._is(j, "{") or self._is(j, ";")):
            j += 1
        if j < end and self._is(j, "{"):
            return self.match[j] + 1
        return j + 1

    def _enter_class(self, i: int, end: int) -> int:
        name: Optional[str] = None
        j = i + 1
        while j < end and not (self._is(j, "{") or self._is(j, ";")):
            if self._is(j, "["):  # [[attribute]], e.g. [[nodiscard]]
                j = self.match[j] + 1
                continue
            got = self._id(j)
            if got is not None and name is None and got != "final":
                name = got
            j += 1
        if j >= end or self._is(j, ";"):  # forward declaration
            return j + 1
        close = self.match[j]
        self._scan_scope(j + 1, close, name)
        return close + 1

    # -- per-class concurrency state (locks checker) -------------------------

    def _scan_classes(self, begin: int, end: int) -> None:
        """Find every class/struct definition and scan its members. The walk
        is linear and transparent through namespaces and function bodies, so
        nesting anywhere is found; enum bodies are skipped."""
        i = begin
        while i < end:
            tok = self.tokens[i]
            if tok.kind == "id" and tok.text == "enum":
                i = self._skip_enum(i, end)
                continue
            if (tok.kind == "id" and tok.text in ("class", "struct")
                    and self._id(i - 1) != "enum"):
                name: Optional[str] = None
                j = i + 1
                while j < end and not (self._is(j, "{") or self._is(j, ";")):
                    if self._is(j, "["):
                        j = self.match[j] + 1
                        continue
                    got = self._id(j)
                    if got is not None and name is None and got != "final":
                        name = got
                    j += 1
                if j >= end or self._is(j, ";"):  # forward declaration
                    i = j + 1
                    continue
                close = self.match[j]
                self._scan_class_body(j + 1, close, name or "<anonymous>",
                                      tok.line)
                i = close + 1
                continue
            i += 1

    def _scan_class_body(self, begin: int, end: int, name: str,
                         line: int) -> None:
        cls = ClassConcurrency(name=name, file=self.path, line=line)
        i = begin
        unit_start = begin
        while i < end:
            tok = self.tokens[i]
            if tok.kind == "punct" and tok.text in ("(", "["):
                i = self.match[i] + 1
                continue
            if tok.kind == "punct" and tok.text == "{":
                close = self.match[i]
                head = self._id(unit_start)
                if head in ("class", "struct"):
                    nested: Optional[str] = None
                    for k in range(unit_start + 1, i):
                        got = self._id(k)
                        if got is not None and got != "final":
                            nested = got
                            break
                    self._scan_class_body(i + 1, close,
                                          nested or "<anonymous>",
                                          self.tokens[unit_start].line)
                    i = close + 1
                    if self._is(i, ";"):
                        i += 1
                    unit_start = i
                    continue
                if head == "enum":
                    i = close + 1
                    if self._is(i, ";"):
                        i += 1
                    unit_start = i
                    continue
                if self._is(close + 1, ";"):
                    # Brace initializer: the unit continues to that ';'.
                    i = close + 1
                    continue
                # Inline function body (or similar): not a data member.
                i = close + 1
                unit_start = i
                continue
            if tok.kind == "punct" and tok.text == ";":
                self._class_member_unit(cls, unit_start, i)
                i += 1
                unit_start = i
                continue
            if (tok.kind == "punct" and tok.text == ":"
                    and self._id(i - 1) in ("public", "private", "protected")):
                i += 1
                unit_start = i
                continue
            i += 1
        if cls.mutexes:
            self.classes.append(cls)

    def _class_member_unit(self, cls: ClassConcurrency, begin: int,
                           end: int) -> None:
        """Classify one `;`-terminated class-body unit as a data member (and
        record it), or skip it (functions, aliases, friends, ...)."""
        first = self._id(begin)
        if begin >= end or first in (
                "using", "typedef", "friend", "template", "operator",
                "static_assert", "enum", "class", "struct", "public",
                "private", "protected", "return", "if", "for", "while"):
            return
        is_static = False
        is_const = False  # const-ness of the *accessed* object
        ptr = False
        seen_eq = False
        angle = 0
        guarded: Optional[str] = None
        named: List[Tuple[str, int]] = []  # (text, token index) at depth 0
        init_range: Optional[Tuple[int, int]] = None
        k = begin
        while k < end:
            t = self.tokens[k]
            if t.kind == "id":
                if (t.text in ("LQS_GUARDED_BY", "LQS_PT_GUARDED_BY")
                        and self._is(k + 1, "(")):
                    close = self.match[k + 1]
                    ids = [
                        x.text for x in self.tokens[k + 2:close]
                        if x.kind == "id" and x.text != "this"
                    ]
                    guarded = ids[-1] if ids else ""
                    k = close + 1
                    continue
                if t.text in _ANNOTATION_MACROS and self._is(k + 1, "("):
                    k = self.match[k + 1] + 1
                    continue
                if t.text in ("static", "constexpr", "consteval"):
                    is_static = True
                    k += 1
                    continue
                if t.text == "const" and angle == 0 and not seen_eq:
                    # `const T x` makes the object const; `T* const x` makes
                    # the pointer const (still an immutable member); but
                    # `const T* x` is a mutable pointer member.
                    if ptr:
                        is_const = True
                    elif not named:
                        is_const = True
                    k += 1
                    continue
                if t.text in ("mutable", "volatile", "inline", "typename",
                              "extern"):
                    k += 1
                    continue
                if angle == 0 and not seen_eq:
                    named.append((t.text, k))
                k += 1
                continue
            if t.kind == "punct":
                if t.text in ("(", "[", "{"):
                    close = self.match[k]
                    if (t.text == "(" and angle == 0 and not seen_eq
                            and named and self.tokens[k - 1].kind == "id"
                            and self.tokens[k - 1].text == named[-1][0]):
                        # `name(` at the top level: a function declaration.
                        return
                    if (t.text == "{" and angle == 0 and not seen_eq
                            and named and init_range is None):
                        init_range = (k + 1, close)
                    k = close + 1
                    continue
                if t.text == "<":
                    angle += 1
                elif t.text == ">":
                    angle = max(0, angle - 1)
                elif t.text == ">>":
                    angle = max(0, angle - 2)
                elif t.text == "=":
                    seen_eq = True
                elif t.text in ("*", "&", "&&") and angle == 0 and not seen_eq:
                    ptr = True
                    is_const = False  # const seen so far bound the pointee
                k += 1
                continue
            k += 1
        if len(named) < 2:
            return  # no separate type and name: not a data member
        if any(text == "operator" for text, _ in named):
            return  # operator overload declaration
        member_name = named[-1][0]
        member_line = self.tokens[named[-1][1]].line
        type_ids = [text for text, _ in named[:-1]]
        if "Mutex" in type_ids and not ptr:
            mutex = MutexMember(name=member_name, line=member_line)
            if init_range is not None:
                mutex.has_init = True
                rank_name, rank_literal = self._parse_rank_arg(*init_range)
                mutex.rank_name = rank_name
                mutex.rank_literal = rank_literal
            cls.mutexes.append(mutex)
            return
        is_sync = any(t in ("Mutex", "CondVar", "MutexLock", "atomic",
                            "atomic_flag", "mutex", "condition_variable")
                      for t in type_ids)
        cls.fields.append(
            FieldMember(name=member_name, line=member_line,
                        guarded_by=guarded, is_const=is_const,
                        is_static=is_static, is_sync=is_sync))

    def _parse_rank_arg(self, begin: int,
                        end: int) -> Tuple[Optional[str], Optional[int]]:
        """First constructor argument of a Mutex: a named lock_rank constant
        (returns (name, None)) or a numeric literal (returns (None, value));
        (None, None) when the argument list is empty/unrecognized."""
        arg_ids: List[str] = []
        k = begin
        while k < end:
            t = self.tokens[k]
            if t.kind == "punct" and t.text in ("(", "[", "{"):
                k = self.match[k] + 1
                continue
            if t.kind == "punct" and t.text == ",":
                break
            if t.kind == "id":
                arg_ids.append(t.text)
            elif t.kind == "num" and not arg_ids:
                try:
                    return None, int(t.text, 0)
                except ValueError:
                    return None, None
            k += 1
        if arg_ids:
            return arg_ids[-1], None
        return None, None

    # -- function recognition ----------------------------------------------

    def _signature_start(self, chain_start: int) -> int:
        """Index of the first token of the declaration containing
        `chain_start` (walks back to the previous ; { } or access label)."""
        k = chain_start - 1
        while k >= 0:
            tok = self.tokens[k]
            if tok.kind == "punct" and tok.text in (";", "{", "}"):
                return k + 1
            if (tok.kind == "punct" and tok.text == ":"
                    and self._id(k - 1) in ("public", "private", "protected")):
                return k + 1
            if tok.kind == "punct" and tok.text == ">":
                # Could close a template parameter list; keep walking.
                pass
            k -= 1
        return 0

    def _try_function(self, open_paren: int,
                      class_name: Optional[str]) -> Optional[int]:
        name_idx = open_paren - 1
        name = self._id(name_idx)
        if name is None or name in _NOT_A_CALLEE:
            return None
        # Qualified name chain A::B::name.
        chain = [name]
        p = name_idx
        while self._is(p - 1, "::") and self._id(p - 2) is not None:
            chain.insert(0, self.tokens[p - 2].text)
            p -= 2
        if self._is(p - 1, "~"):  # destructor: record but never relevant
            p -= 1
        sig_start = self._signature_start(p)
        ret_tokens = self.tokens[sig_start:p]
        ret_texts = [t.text for t in ret_tokens]
        if "=" in ret_texts or any(t in _CONTROL_KEYWORDS for t in ret_texts):
            return None
        close_paren = self.match[open_paren]
        # Post-signature qualifiers / attribute macros / trailing return.
        j = close_paren + 1
        is_virtual = "virtual" in ret_texts
        saw_pure_or_defaulted = False
        requires: List[str] = []
        while j < len(self.tokens):
            tok = self.tokens[j]
            if tok.kind == "id" and tok.text in _POST_QUALIFIERS:
                if tok.text in ("override", "final"):
                    is_virtual = True
                j += 1
                # noexcept(...) / attribute macro arguments
                if self._is(j, "("):
                    j = self.match[j] + 1
                continue
            if tok.kind == "id" and self._is(j + 1, "("):
                if tok.text == "LQS_REQUIRES":
                    close = self.match[j + 1]
                    requires.extend(
                        t.text for t in self.tokens[j + 2:close]
                        if t.kind == "id" and t.text != "this")
                j = self.match[j + 1] + 1  # attribute-like macro
                continue
            if tok.kind == "punct" and tok.text in ("&", "&&"):
                j += 1
                continue
            if tok.kind == "punct" and tok.text == "->":
                # Trailing return type: scan to the body/terminator.
                while j < len(self.tokens) and not (self._is(j, "{")
                                                    or self._is(j, ";")):
                    j += 1
                continue
            if tok.kind == "punct" and tok.text == "=":
                nxt = self.tokens[j + 1] if j + 1 < len(self.tokens) else None
                if nxt is not None and nxt.text in ("default", "delete", "0"):
                    if nxt.text == "0":
                        is_virtual = True
                    saw_pure_or_defaulted = True
                    j += 2
                    continue
                return None  # initializer: not a function
            break
        if j >= len(self.tokens):
            return None
        terminator = self.tokens[j]
        body_open: Optional[int] = None
        if terminator.kind == "punct" and terminator.text == ":":
            # Only constructors carry an initializer list: in-class
            # `Foo() : ...` or out-of-line `Foo::Foo() : ...`.
            is_ctor = (class_name == name
                       or (len(chain) >= 2 and chain[-1] == chain[-2]))
            if not is_ctor or saw_pure_or_defaulted:
                return None
            # Constructor initializer list: find the body brace at depth 0.
            k = j + 1
            while k < len(self.tokens):
                if self._is(k, "(") or self._is(k, "["):
                    k = self.match[k] + 1
                    continue
                if self._is(k, "{"):
                    # Brace-init member (a_{x}) vs body: the body brace is
                    # followed by statements; a member brace is followed by
                    # `,` or the body brace. Disambiguate via the matcher:
                    close = self.match[k]
                    if self._is(close + 1, ",") or self._is(close + 1, "{"):
                        k = close + 1
                        continue
                    body_open = k
                    break
                k += 1
            if body_open is None:
                return None
        elif terminator.kind == "punct" and terminator.text == "{":
            body_open = j
        elif terminator.kind == "punct" and terminator.text == ";":
            body_open = None
        else:
            return None

        if len(chain) > 1:
            qualname = "::".join(chain)
        elif class_name is not None:
            qualname = f"{class_name}::{name}"
        else:
            qualname = name

        returns_status = any(t in ("Status", "StatusOr") for t in ret_texts)
        # Constructors of Status/StatusOr themselves have the class name in
        # scope, not the return slot; exclude self-named functions.
        if name in ("Status", "StatusOr"):
            returns_status = bool(ret_texts) and ret_texts[-1] in (
                "Status", "StatusOr")

        noalloc = "LQS_NOALLOC" in ret_texts
        alloc_ok: Optional[str] = None
        if "LQS_NOALLOC" in ret_texts or "LQS_ALLOC_OK" in ret_texts:
            alloc_ok = self._alloc_ok_justification(sig_start, p)
            if "LQS_ALLOC_OK" not in ret_texts:
                alloc_ok = None

        fn = FunctionInfo(
            name=name,
            qualname=qualname,
            file=self.path,
            line=self.tokens[name_idx].line,
            is_definition=body_open is not None,
            is_virtual=is_virtual,
            returns_status=returns_status,
            noalloc=noalloc,
            alloc_ok=alloc_ok,
            deterministic="LQS_DETERMINISTIC" in ret_texts,
            requires=requires,
        )
        if body_open is not None:
            body_close = self.match[body_open]
            self._scan_body(fn, body_open + 1, body_close)
            self.functions.append(fn)
            return body_close + 1
        self.functions.append(fn)
        return j + 1

    def _alloc_ok_justification(self, sig_start: int,
                                sig_end: int) -> Optional[str]:
        for k in range(sig_start, sig_end):
            if (self.tokens[k].kind == "id"
                    and self.tokens[k].text == "LQS_ALLOC_OK"
                    and self._is(k + 1, "(")):
                close = self.match[k + 1]
                parts = [
                    t.text for t in self.tokens[k + 2:close]
                    if t.kind == "str"
                ]
                return "".join(parts)
        return ""  # annotation present without arguments

    # -- body analysis ------------------------------------------------------

    def _chain_start(self, name_idx: int) -> int:
        """Start of the postfix expression ending at the callee name."""
        start = name_idx
        while True:
            prev = start - 1
            if prev >= 0 and self.tokens[prev].kind == "punct" \
                    and self.tokens[prev].text in ("::", ".", "->"):
                q = prev - 1
                if q >= 0 and self.tokens[q].kind == "punct" \
                        and self.tokens[q].text in (")", "]"):
                    opener = self.match[q]
                    if self._id(opener - 1) is not None:
                        start = opener - 1
                    else:
                        start = opener
                elif self._id(q) is not None:
                    start = q
                else:
                    return start
            else:
                return start

    def _last_arg_id(self, open_idx: int) -> Optional[str]:
        """Last identifier inside a bracketed argument list, skipping
        `this` — extracts the mutex from `(&mu_)` / `(&shard->mu)`."""
        result: Optional[str] = None
        for t in self.tokens[open_idx + 1:self.match[open_idx]]:
            if t.kind == "id" and t.text != "this":
                result = t.text
        return result

    def _scan_body(self, fn: FunctionInfo, begin: int, end: int) -> None:
        tokens = self.tokens
        # Lexical lock tracking: MutexLock scopes release at their
        # enclosing brace close; explicit Lock() entries release at the
        # matching Unlock() (or, conservatively, at function end).
        brace_close: List[int] = []
        held: List[List] = []  # [mutex name, release token index or None]

        def held_names() -> List[str]:
            return [h[0] for h in held]

        i = begin
        while i < end:
            tok = tokens[i]
            if tok.kind == "punct" and tok.text == "{":
                brace_close.append(self.match[i])
                i += 1
                continue
            if tok.kind == "punct" and tok.text == "}":
                if brace_close and brace_close[-1] == i:
                    brace_close.pop()
                held[:] = [h for h in held if h[1] != i]
                i += 1
                continue
            if tok.kind == "id" and tok.text == "new":
                fn.allocs.append(AllocSite("new", "operator new", tok.line))
                i += 1
                continue
            if (tok.kind == "id" and tok.text in _ALLOC_FUNCTIONS
                    and (self._is(i + 1, "(") or self._is(i + 1, "<"))):
                fn.allocs.append(AllocSite("alloc-fn", tok.text, tok.line))
                i += 1
                continue
            if tok.kind == "id" and tok.text in _RANDOM_IDS:
                fn.hazards.append(HazardSite("rand", tok.text, tok.line))
                i += 1
                continue
            if (tok.kind == "id" and tok.text == "MutexLock"
                    and self._id(i + 1) is not None
                    and (self._is(i + 2, "(") or self._is(i + 2, "{"))):
                close = self.match[i + 2]
                mutex = self._last_arg_id(i + 2)
                if mutex is not None:
                    fn.acquires.append(
                        AcquireSite(mutex=mutex, kind="lock", line=tok.line,
                                    held=held_names()))
                    release = brace_close[-1] if brace_close else end
                    held.append([mutex, release])
                i = close + 1
                continue
            if (tok.kind == "id" and tok.text == "Mutex"
                    and self._id(i + 1) is not None
                    and (self._is(i + 2, "(") or self._is(i + 2, "{"))):
                close = self.match[i + 2]
                rank_name, rank_literal = self._parse_rank_arg(i + 3, close)
                fn.local_mutexes.append(
                    MutexMember(name=self.tokens[i + 1].text,
                                line=tok.line, has_init=close > i + 3,
                                rank_name=rank_name,
                                rank_literal=rank_literal))
                i = close + 1
                continue
            if (tok.kind == "id" and tok.text == "for"
                    and self._is(i + 1, "(")):
                # Range-for: every identifier in the range expression is a
                # candidate `iter` hazard (resolved against the container
                # registries by the determinism checker).
                close = self.match[i + 1]
                k = i + 2
                while k < close:
                    t = tokens[k]
                    if t.kind == "punct" and t.text in ("(", "[", "{"):
                        k = self.match[k] + 1
                        continue
                    if t.kind == "punct" and t.text == ";":
                        break  # classic for loop: no range expression
                    if t.kind == "punct" and t.text == ":":
                        for t2 in tokens[k + 1:close]:
                            if t2.kind == "id":
                                fn.hazards.append(
                                    HazardSite("iter", t2.text, t2.line))
                        break
                    k += 1
                i += 2
                continue
            if not (tok.kind == "punct" and tok.text == "("):
                i += 1
                continue
            # A call: identifier directly before '('.
            name = self._id(i - 1)
            if name is None or name in _NOT_A_CALLEE:
                i += 1
                continue
            name_idx = i - 1
            is_method = (tokens[name_idx - 1].kind == "punct"
                         and tokens[name_idx - 1].text in (".", "->"))
            qualifier = None
            if self._is(name_idx - 1, "::"):
                qualifier = self._id(name_idx - 2)
            if is_method and name in _CONTAINER_GROWTH:
                fn.allocs.append(AllocSite("container", name, tok.line))
            # Determinism hazards.
            if name == "now" and qualifier in _WALLCLOCK_QUALIFIERS:
                fn.hazards.append(
                    HazardSite("wall-clock", f"{qualifier}::now", tok.line))
            elif not is_method and name in _WALLCLOCK_CALLS:
                fn.hazards.append(HazardSite("wall-clock", name, tok.line))
            elif not is_method and name in _RAND_CALLS:
                fn.hazards.append(HazardSite("rand", name, tok.line))
            elif not is_method and name in _ENV_CALLS:
                fn.hazards.append(HazardSite("env", name, tok.line))
            elif is_method and name in _ITER_METHODS:
                obj = self._id(name_idx - 2)
                if obj is not None:
                    fn.hazards.append(HazardSite("iter", obj, tok.line))
            # Lock semantics of method calls on mutexes and condvars.
            if is_method and name == "Wait":
                target = self._last_arg_id(i)
                if target is not None:
                    fn.acquires.append(
                        AcquireSite(mutex=target, kind="wait", line=tok.line,
                                    held=held_names()))
            elif is_method and name in ("Lock", "Unlock"):
                obj = self._id(name_idx - 2)
                if obj is not None:
                    if name == "Lock":
                        held.append([obj, None])
                    else:
                        for idx in range(len(held) - 1, -1, -1):
                            if held[idx][0] == obj:
                                del held[idx]
                                break
            call = CallSite(name=name, line=tokens[name_idx].line,
                            is_method_call=is_method, qualifier=qualifier,
                            held=held_names())
            start = self._chain_start(name_idx)
            boundary_idx = start - 1
            # Explicit (void) cast?
            if (self._is(start - 1, ")") and self._id(start - 2) == "void"
                    and self._is(start - 3, "(")):
                call.void_cast = True
                boundary_idx = start - 4
            at_statement_start = (
                boundary_idx < begin
                or (tokens[boundary_idx].kind == "punct"
                    and tokens[boundary_idx].text in (";", "{", "}")))
            close = self.match[i]
            followed_by_semicolon = self._is(close + 1, ";")
            if at_statement_start and followed_by_semicolon:
                call.discarded = True
            elif not call.void_cast and self._is(start - 1, "="):
                assignee = self._id(start - 2)
                before = start - 3
                # Only a fresh binding (`Status s = f(...);`, `auto v =
                # f(...);`) gets never-consulted analysis. A re-assignment
                # (`status = f(...);`) or member store (`x.status = f(...)`)
                # keeps the result alive beyond this statement.
                is_decl = (
                    assignee is not None and before >= 0
                    and (tokens[before].kind == "id"
                         or (tokens[before].kind == "punct"
                             and tokens[before].text in (">", "&", "*"))))
                if is_decl and tokens[before].kind == "id" \
                        and tokens[before].text in ("return", "co_return"):
                    is_decl = False
                if is_decl:
                    call.assigned_to = assignee
                    call.consulted = any(
                        t.kind == "id" and t.text == assignee
                        for t in tokens[close + 1:end])
            fn.calls.append(call)
            i += 1


# --------------------------------------------------------------------------
# Public entry point


def parse_files(paths: List[str],
                read_text=None) -> Tuple[SourceModel, List[str]]:
    """Parse `paths` into one SourceModel. Returns (model, parse_errors)."""
    model = SourceModel()
    errors: List[str] = []
    for path in paths:
        try:
            if read_text is not None:
                text = read_text(path)
            else:
                with open(path, "r", encoding="utf-8",
                          errors="replace") as handle:
                    text = handle.read()
        except OSError as err:
            errors.append(f"{path}: {err}")
            continue
        model.includes[path] = scan_includes(text)
        model.suppressions[path] = scan_suppressions(path, text)
        model.lock_ranks.update(scan_lock_ranks(text))
        try:
            scanner = _FileScanner(path, tokenize(text))
            scanner.scan()
        except FrontendError as err:
            errors.append(f"{path}: {err}")
            continue
        model.functions.extend(scanner.functions)
        model.classes.extend(scanner.classes)
        model.unordered_names.update(scanner.unordered_names)
        model.ptr_keyed_names.update(scanner.ptr_keyed_names)
    for fn in model.functions:
        if fn.returns_status:
            model.status_names.add(fn.name)
    return model, errors
