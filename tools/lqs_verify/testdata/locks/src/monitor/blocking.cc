// Blocking-under-lock fixtures for the locks checker (rule c): CondVar
// waits with extra locks held, Poll/ParallelFor under a lock (direct and
// transitive), and the lock-ok escape hatch (justified vs empty). Cases
// are located by unique substrings.
#include "common/locks.h"

namespace lqs {

class Blocking {
 public:
  // case: waiting on inner while outer stays held — every other thread
  // needing outer deadlocks behind a condition only they might signal.
  void WaitUnderOther() {
    MutexLock hold_outer(&outer_mu_);
    MutexLock hold_inner(&inner_mu_);
    cv_.Wait(&inner_mu_);
  }

  // Clean: the waited mutex is the only one held.
  void WaitClean() {
    MutexLock lock(&inner_mu_);
    cv_.Wait(&inner_mu_);
  }

  // case: endpoint poll (unbounded transport wait) under a lock.
  void PollUnderLock(SnapshotEndpoint* endpoint) {
    MutexLock lock(&outer_mu_);
    endpoint->Poll(0);
  }

  // case: thread-pool fan-out (blocks for the barrier) under a lock.
  void FanOutUnderLock(ThreadPool* pool) {
    MutexLock lock(&outer_mu_);
    pool->ParallelFor(4);
  }

  // case: the same fan-out reached transitively — the finding lands in
  // FanOutHelper with the call chain attached.
  void TransitiveBlocking(ThreadPool* pool) {
    MutexLock lock(&outer_mu_);
    FanOutHelper(pool);
  }

  // Clean on its own (also walked as a root with nothing held).
  void FanOutHelper(ThreadPool* pool) { pool->ParallelFor(2); }

  // Clean: a justified escape hatch silences the site.
  void JustifiedPoll(SnapshotEndpoint* endpoint) {
    MutexLock lock(&outer_mu_);
    // lqs-verify: lock-ok(fixture: this mock endpoint returns immediately)
    endpoint->Poll(0);
  }

  // case: an escape hatch with an empty reason is itself a finding.
  void EmptyEscapePoll(SnapshotEndpoint* endpoint) {
    MutexLock lock(&outer_mu_);
    // lqs-verify: lock-ok()
    endpoint->Poll(0);
  }

 private:
  Mutex outer_mu_{lock_rank::kOuter, "outer"};
  Mutex inner_mu_{lock_rank::kInner, "inner"};
  CondVar cv_;
};

}  // namespace lqs
