// GUARDED_BY-coverage fixtures for the locks checker (rule d): a
// mutex-owning class must annotate or excuse every mutable member. Cases
// are located by unique substrings.
#ifndef LOCKS_FIXTURE_MONITOR_COVERAGE_H_
#define LOCKS_FIXTURE_MONITOR_COVERAGE_H_

#include <atomic>

#include "common/locks.h"

namespace lqs {

class Coverage {
 public:
  void Touch();

 private:
  Mutex cover_mu_{lock_rank::kOuter, "cover"};

  // Clean: annotated with the owning mutex.
  int guarded_counter_ LQS_GUARDED_BY(cover_mu_) = 0;

  // case: mutable member with no annotation and no excuse.
  int unguarded_counter_ = 0;

  // Clean: explicitly excused with a reason.
  // lqs-verify: guard-ok(fixture: driver-thread-only by contract)
  int excused_counter_ = 0;

  // case: an excuse with an empty reason is itself a finding.
  // lqs-verify: guard-ok()
  int empty_excuse_counter_ = 0;

  // Clean: immutable after construction.
  const int frozen_limit_ = 8;

  // Clean: statics are out of the instance-coverage rule.
  static int shared_default_;

  // Clean: internally synchronized.
  std::atomic<int> atomic_counter_{0};

  // case: GUARDED_BY names a mutex that is not a member of this class.
  int ghost_guarded_ LQS_GUARDED_BY(phantom_mu_) = 0;
};

}  // namespace lqs

#endif  // LOCKS_FIXTURE_MONITOR_COVERAGE_H_
