// Acquisition-order fixtures for the locks checker (rule b): lexical and
// transitive rank inversions. Cases are located by unique substrings.
#include "common/locks.h"

namespace lqs {

class Inversion {
 public:
  // case: lexical inversion — kOuter (100) acquired after kInner (200).
  void LexicalInversion() {
    MutexLock hold_inner(&inner_mu_);
    MutexLock then_outer(&outer_mu_);
  }

  // case: equal ranks — the order between them is undeclared, so nesting
  // in either direction is an inversion.
  void EqualRankNesting() {
    MutexLock first(&outer_mu_);
    MutexLock second(&also_outer_mu_);
  }

  // Clean: strictly rank-increasing nesting.
  void CleanNesting() {
    MutexLock first(&outer_mu_);
    MutexLock second(&inner_mu_);
  }

  // case: transitive inversion — the callee takes kOuter while this frame
  // still holds kInner. The finding lands at the callee's acquisition with
  // the call chain attached.
  void ChainInversion() {
    MutexLock hold_inner(&inner_mu_);
    TakeOuter();
  }

  // Clean on its own (it is also walked as a root with nothing held).
  void TakeOuter() { MutexLock lock(&outer_mu_); }

 private:
  Mutex outer_mu_{lock_rank::kOuter, "outer"};
  Mutex also_outer_mu_{lock_rank::kAlsoOuter, "also-outer"};
  Mutex inner_mu_{lock_rank::kInner, "inner"};
};

}  // namespace lqs
