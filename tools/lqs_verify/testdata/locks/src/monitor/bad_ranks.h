// Construction-rank fixtures for the locks checker (rule a). Cases are
// located by unique substrings from test_lqs_verify.py.
#ifndef LOCKS_FIXTURE_MONITOR_BAD_RANKS_H_
#define LOCKS_FIXTURE_MONITOR_BAD_RANKS_H_

#include "common/locks.h"

namespace lqs {

// case: default construction — no rank at all.
class DefaultRank {
 public:
  void Touch();

 private:
  Mutex default_mu_;
};

// case: numeric-literal rank instead of a named lock_rank constant.
class LiteralRank {
 public:
  void Touch();

 private:
  Mutex literal_mu_{42, "literal"};
};

// case: a named rank that is not in the lock_rank registry.
class GhostRank {
 public:
  void Touch();

 private:
  Mutex ghost_mu_{lock_rank::kGhost, "ghost"};
};

// Clean: named, registered rank.
class CleanRank {
 public:
  void Touch();

 private:
  Mutex clean_mu_{lock_rank::kInner, "clean"};
};

// case: function-local mutex with a literal rank.
inline void LocalLiteralRank() {
  Mutex scratch_mu(7, "scratch");
  scratch_mu.Lock();
  scratch_mu.Unlock();
}

}  // namespace lqs

#endif  // LOCKS_FIXTURE_MONITOR_BAD_RANKS_H_
