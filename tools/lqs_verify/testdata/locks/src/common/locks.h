// Mock lock vocabulary for the locks-checker fixtures: just enough shape
// for the frontends to extract ranks, acquisitions and annotations. The
// fixture root's src/common/locks.h is deliberately NOT on the checker's
// exempt list (only mutex.{h,cc} are), but it owns no mutexes and has no
// bodies, so it contributes no findings of its own.
#ifndef LOCKS_FIXTURE_COMMON_LOCKS_H_
#define LOCKS_FIXTURE_COMMON_LOCKS_H_

#define LQS_GUARDED_BY(x)
#define LQS_REQUIRES(...)

namespace lqs {

namespace lock_rank {
inline constexpr int kOuter = 100;
inline constexpr int kAlsoOuter = 100;
inline constexpr int kInner = 200;
}  // namespace lock_rank

class Mutex {
 public:
  explicit Mutex(int rank, const char* name = "mock");
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);

 private:
  Mutex* mu_;
};

class CondVar {
 public:
  void Wait(Mutex* mu);
  void Signal();
};

class ThreadPool {
 public:
  void ParallelFor(int n);
};

class SnapshotEndpoint {
 public:
  int Poll(double now_ms);
};

}  // namespace lqs

#endif  // LOCKS_FIXTURE_COMMON_LOCKS_H_
