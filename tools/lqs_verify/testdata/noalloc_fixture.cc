// Fixture for the noalloc checker. Cases are located by unique substrings
// from test_lqs_verify.py, so lines may move but markers must stay unique.
#include <memory>
#include <vector>

#define LQS_NOALLOC
#define LQS_ALLOC_OK(justification)

namespace lqs {

struct Buffer {
  std::vector<int> values;
};

// Two-deep chain: root -> Middle -> Leaf -> operator new.
int* Leaf() { return new int(7); }  // the allocation site

int* Middle() { return Leaf(); }

LQS_NOALLOC int* DeepRoot() { return Middle(); }  // case: deep chain

// Direct container growth inside an annotated function.
LQS_NOALLOC void GrowDirect(Buffer* buffer) {
  buffer->values.push_back(1);  // case: direct growth
}

// A justified boundary: traversal stops here, its body is not analyzed.
LQS_ALLOC_OK("setup-time sizing; called once per session")
void SizingBoundary(Buffer* buffer) { buffer->values.resize(64); }

LQS_NOALLOC void ThroughBoundary(Buffer* buffer) {
  SizingBoundary(buffer);  // clean: callee is a declared boundary
}

// Line-level suppression with a justification: clean.
LQS_NOALLOC void SuppressedLine(Buffer* buffer) {
  // LQS_ALLOC_OK("capacity pre-sized by SizingBoundary")
  buffer->values.assign(64, 0);
}

// Line-level suppression with no justification: itself a finding.
LQS_NOALLOC void EmptySuppression(Buffer* buffer) {
  buffer->values.assign(64, 0);  // LQS_ALLOC_OK()
}

// Virtual dispatch is outside the checked chains.
class Sink {
 public:
  virtual void Push(int value) = 0;
  virtual ~Sink() = default;
};

class VectorSink : public Sink {
 public:
  void Push(int value) override { storage_.push_back(value); }

 private:
  std::vector<int> storage_;
};

LQS_NOALLOC void ThroughVirtual(Sink* sink) {
  sink->Push(3);  // clean: virtual call, not followed
}

// Conflicting annotations on one function: a finding.
LQS_NOALLOC LQS_ALLOC_OK("cannot be both")
void Conflicted();  // case: conflict

// Function-level escape with an empty justification: a finding.
LQS_ALLOC_OK("")
void Unjustified(Buffer* buffer);  // case: empty function justification

}  // namespace lqs
