// Cycle fixture: alpha and beta include each other (same layer, so the
// layer map is satisfied — only the cycle detector fires).
#ifndef FIXTURE_CYCLE_ALPHA_H_
#define FIXTURE_CYCLE_ALPHA_H_

#include "common/beta.h"

namespace fixture {
struct Alpha {};
}  // namespace fixture

#endif  // FIXTURE_CYCLE_ALPHA_H_
