// Cycle fixture: the other half of the alpha <-> beta include cycle.
#ifndef FIXTURE_CYCLE_BETA_H_
#define FIXTURE_CYCLE_BETA_H_

#include "common/alpha.h"

namespace fixture {
struct Beta {};
}  // namespace fixture

#endif  // FIXTURE_CYCLE_BETA_H_
