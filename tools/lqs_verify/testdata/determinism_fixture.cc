// Fixture for the determinism checker. Cases are located by unique
// substrings from test_lqs_verify.py, so lines may move but markers must
// stay unique.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <unordered_map>
#include <vector>

#define LQS_DETERMINISTIC

namespace lqs {

// Sanctioned sources: seeded randomness and virtual time. Names matter —
// the checker allows these and rejects their std:: counterparts.
struct Rng {
  unsigned Next();
};
struct VirtualClock {
  double NowMs();
};

struct Item {
  int weight = 0;
};

struct State {
  std::unordered_map<int, int> hash_index;
  std::map<const Item*, int> ptr_ranks;
  std::vector<int> ordered_values;
  Rng rng;
  VirtualClock clock;
};

// case: direct wall-clock read in a deterministic root.
LQS_DETERMINISTIC double WallClockDirect() {
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

// Not annotated itself — the hazard only matters when reached from a root.
double NowHelper() {
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

// case: transitive wall-clock reach through a helper.
LQS_DETERMINISTIC double WallClockTransitive() { return NowHelper(); }

// case: C wall-clock API.
LQS_DETERMINISTIC long TimeCall() { return time(nullptr); }

// case: std::rand.
LQS_DETERMINISTIC int RandCall() { return rand(); }

// case: hardware entropy source.
LQS_DETERMINISTIC unsigned EntropyDraw() {
  std::random_device entropy;
  return entropy();
}

// case: environment read.
LQS_DETERMINISTIC const char* EnvRead() { return getenv("LQS_MODE"); }

// case: range-for over an unordered container — iteration order depends
// on the hash seed and would leak into output bytes.
LQS_DETERMINISTIC int UnorderedRangeFor(State* state) {
  int sum = 0;
  for (const auto& entry : state->hash_index) {
    sum += entry.second;
  }
  return sum;
}

// case: explicit begin() on an unordered container.
LQS_DETERMINISTIC int UnorderedBegin(State* state) {
  auto it = state->hash_index.begin();
  return it->second;
}

// case: iterating a pointer-keyed ordered map — ordering depends on
// allocation addresses, not values.
LQS_DETERMINISTIC int PtrKeyedIteration(State* state) {
  int sum = 0;
  for (const auto& entry : state->ptr_ranks) {
    sum += entry.second;
  }
  return sum;
}

// case: an escape hatch with an empty reason is itself a finding.
LQS_DETERMINISTIC long EmptyDetOk() {
  // lqs-verify: det-ok()
  return time(nullptr);
}

// Clean: a justified escape hatch silences the site.
LQS_DETERMINISTIC long JustifiedDetOk() {
  // lqs-verify: det-ok(fixture: telemetry only, never feeds output bytes)
  return time(nullptr);
}

// Clean: the sanctioned seeded/virtual sources.
LQS_DETERMINISTIC double SanctionedSources(State* state) {
  return state->clock.NowMs() + static_cast<double>(state->rng.Next());
}

// Clean: iteration over ordered, value-keyed containers is reproducible.
LQS_DETERMINISTIC int OrderedIteration(State* state) {
  int sum = 0;
  for (int value : state->ordered_values) {
    sum += value;
  }
  return sum;
}

// Clean: virtual dispatch is outside the checked chains.
class TimeSource {
 public:
  virtual double Sample() = 0;
  virtual ~TimeSource() = default;
};

class WallTimeSource : public TimeSource {
 public:
  double Sample() override { return NowHelper(); }
};

LQS_DETERMINISTIC double ThroughVirtualTime(TimeSource* source) {
  return source->Sample();
}

// Clean: hazards in a function nothing deterministic reaches.
double UnmarkedHazards() { return NowHelper() + rand(); }

}  // namespace lqs
