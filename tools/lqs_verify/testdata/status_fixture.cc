// Fixture for the status-discipline checker. Each numbered case is asserted
// exactly by test_lqs_verify.py; renumbering lines breaks the suite.
#include <string>

namespace lqs {

class Status {
 public:
  static Status OK();
  bool ok() const;
};

Status Connect(const std::string& target);
Status Disconnect();
int SideEffectOnly();

void Cases() {
  // case 1: plain discard — a finding.
  Connect("a");

  // case 2: explicit (void)-cast — still a finding; intent must be spelled
  // out with a suppression comment instead.
  (void)Connect("b");

  // case 3: bound but never consulted — a finding.
  Status dangling = Connect("c");

  // case 4: bound and consulted — clean.
  Status checked = Connect("d");
  if (!checked.ok()) return;

  // case 5: suppressed discard with a reason — clean.
  Disconnect();  // lqs-verify: status-ok(teardown; failure is unobservable)

  // case 6: suppression with an empty reason — the suppression itself is
  // the finding.
  Disconnect();  // lqs-verify: status-ok()

  // case 7: non-Status call discarded — clean, outside this checker.
  SideEffectOnly();

  // case 8: member store keeps the result alive — clean.
  struct Holder {
    Status status;
  } holder;
  holder.status = Connect("e");
}

}  // namespace lqs
