// Layering fixture: a clean bottom-layer header.
#ifndef FIXTURE_COMMON_TYPES_H_
#define FIXTURE_COMMON_TYPES_H_

namespace fixture {
using NodeId = int;
}  // namespace fixture

#endif  // FIXTURE_COMMON_TYPES_H_
