// Layering fixture: common/ is the bottom layer. Including lqs/ from here
// is an upward include — the seeded violation this fixture exists for.
#ifndef FIXTURE_COMMON_CLOCK_H_
#define FIXTURE_COMMON_CLOCK_H_

#include "lqs/progress.h"  // VIOLATION: common -> lqs is upward

namespace fixture {
double NowMs();
}  // namespace fixture

#endif  // FIXTURE_COMMON_CLOCK_H_
