// Layering fixture: ensemble/ may depend on lqs/ (clean include below) but
// monitor/ sits above it — that include is the seeded violation checking
// the ensemble layer entry in the DAG.
#ifndef FIXTURE_ENSEMBLE_ROBUST_H_
#define FIXTURE_ENSEMBLE_ROBUST_H_

#include "lqs/progress.h"
#include "monitor/service.h"  // VIOLATION: ensemble -> monitor is upward

namespace fixture {
double RobustProgress();
}  // namespace fixture

#endif  // FIXTURE_ENSEMBLE_ROBUST_H_
