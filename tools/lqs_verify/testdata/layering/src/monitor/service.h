// Layering fixture: monitor/ sits on top and may include lqs/ — clean.
#ifndef FIXTURE_MONITOR_SERVICE_H_
#define FIXTURE_MONITOR_SERVICE_H_

#include "common/types.h"
#include "lqs/progress.h"

namespace fixture {
void Tick();
}  // namespace fixture

#endif  // FIXTURE_MONITOR_SERVICE_H_
