// Layering fixture: lqs/ may depend on common/ — this file is clean.
#ifndef FIXTURE_LQS_PROGRESS_H_
#define FIXTURE_LQS_PROGRESS_H_

#include "common/types.h"

namespace fixture {
double Progress();
}  // namespace fixture

#endif  // FIXTURE_LQS_PROGRESS_H_
