"""The five lqs-verify checkers: status-discipline, noalloc, layering,
lock-order/annotation-coverage (`locks`), and byte-identity purity
(`determinism`).

Each checker consumes the frontend-agnostic model.SourceModel and returns a
list of model.Finding. Checker semantics (and the escape hatches) are
specified in DESIGN.md §12/§14 and pinned down by the fixture suite in
testdata/ + test_lqs_verify.py.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Set, Tuple

from model import Finding, FunctionInfo, SourceModel

# ---------------------------------------------------------------------------
# status-discipline


def check_status(model: SourceModel) -> List[Finding]:
    """Flag Status/StatusOr-returning calls whose result is dropped.

    Two shapes:
      * discarded: the call is a bare expression statement (including an
        explicit `(void)` cast — intent must be spelled out with a
        `// lqs-verify: status-ok(reason)` suppression instead);
      * bound but never consulted: `Status s = f(...);` where `s` does not
        appear again in the enclosing body.

    The compiler already rejects plain discards ([[nodiscard]] +
    -Werror=unused-result); this checker keeps flagging them for
    configurations built without the warning, and adds the never-consulted
    analysis the compiler cannot do.
    """
    findings: List[Finding] = []
    for fn in model.functions:
        if not fn.is_definition:
            continue
        for call in fn.calls:
            if call.name not in model.status_names:
                continue
            sup = model.suppression_for(fn.file, call.line, "status-ok")
            if call.discarded:
                if sup is not None:
                    if not sup.justification:
                        findings.append(
                            Finding(
                                "status", fn.file, call.line,
                                "status-ok suppression requires a "
                                "non-empty reason"))
                    continue
                how = ("explicitly (void)-cast away"
                       if call.void_cast else "discarded")
                findings.append(
                    Finding(
                        "status", fn.file, call.line,
                        f"result of Status-returning call '{call.name}' is "
                        f"{how} in '{fn.qualname}' — consult it or suppress "
                        "with // lqs-verify: status-ok(reason)"))
            elif call.assigned_to is not None and not call.consulted:
                if sup is not None:
                    if not sup.justification:
                        findings.append(
                            Finding(
                                "status", fn.file, call.line,
                                "status-ok suppression requires a "
                                "non-empty reason"))
                    continue
                findings.append(
                    Finding(
                        "status", fn.file, call.line,
                        f"Status result of '{call.name}' is bound to "
                        f"'{call.assigned_to}' but never consulted in "
                        f"'{fn.qualname}'"))
    return findings


# ---------------------------------------------------------------------------
# noalloc


class _Annotation:
    __slots__ = ("noalloc", "alloc_ok", "virtual", "decl_site",
                 "deterministic", "requires")

    def __init__(self) -> None:
        self.noalloc = False
        self.alloc_ok: Optional[str] = None
        self.virtual = False
        self.decl_site: Optional[Tuple[str, int]] = None
        self.deterministic = False
        self.requires: List[str] = []


def _merge_annotations(model: SourceModel) -> Dict[str, _Annotation]:
    """Annotations and virtual-ness unified across decls and defs of the
    same qualified name (headers carry the annotations; .cc files the
    bodies)."""
    merged: Dict[str, _Annotation] = {}
    for fn in model.functions:
        ann = merged.setdefault(fn.qualname, _Annotation())
        ann.noalloc = ann.noalloc or fn.noalloc
        ann.virtual = ann.virtual or fn.is_virtual
        ann.deterministic = ann.deterministic or fn.deterministic
        for req in fn.requires:
            if req not in ann.requires:
                ann.requires.append(req)
        if fn.alloc_ok is not None:
            if ann.alloc_ok is None or len(fn.alloc_ok) > len(ann.alloc_ok):
                ann.alloc_ok = fn.alloc_ok
        if (fn.noalloc or fn.alloc_ok is not None
                or fn.deterministic) and ann.decl_site is None:
            ann.decl_site = (fn.file, fn.line)
    return merged


def _resolve(call, defs_by_name, visible) -> List[FunctionInfo]:
    candidates = defs_by_name.get(call.name, [])
    if call.qualifier:
        qualified = [
            fn for fn in candidates
            if fn.qualname.endswith(f"{call.qualifier}::{call.name}")
        ]
        if qualified:
            candidates = qualified
    if visible is not None:
        candidates = [fn for fn in candidates if visible(fn.qualname)]
    return candidates


class _Visibility:
    """Include-closure-based call resolution filter.

    Name-only resolution conflates unrelated functions that share a simple
    name (`report_.Add` in analysis/ vs `QueryList::Add` in workload/). A
    candidate is admissible from a caller file only when some declaration or
    definition of its qualified name lives in that file or its transitive
    include closure — mirroring what the compiler could actually have
    resolved the call to.
    """

    def __init__(self, model: SourceModel, root: str) -> None:
        self._root = root
        self._scanned = {os.path.normpath(p): p for p in model.includes}
        self._graph: Dict[str, List[str]] = {}
        for path, includes in model.includes.items():
            self._graph[path] = [
                t for t in (self._resolve_include(inc)
                            for _, inc in includes) if t is not None
            ]
        self._decl_files: Dict[str, Set[str]] = {}
        for fn in model.functions:
            self._decl_files.setdefault(fn.qualname, set()).add(fn.file)
        self._closures: Dict[str, Set[str]] = {}

    def _resolve_include(self, include: str) -> Optional[str]:
        for base in ("src", "."):
            candidate = os.path.normpath(
                os.path.join(self._root, base, include))
            if candidate in self._scanned:
                return self._scanned[candidate]
        return None

    def closure(self, path: str) -> Set[str]:
        cached = self._closures.get(path)
        if cached is not None:
            return cached
        seen: Set[str] = {path}
        stack = [path]
        while stack:
            for target in self._graph.get(stack.pop(), []):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        self._closures[path] = seen
        return seen

    def from_file(self, caller_file: str):
        visible_files = self.closure(caller_file)

        def visible(qualname: str) -> bool:
            return not self._decl_files.get(qualname, set()).isdisjoint(
                visible_files)

        return visible


_PAIRED = re.compile(r"LQS_NOALLOC_PAIRED:\s*([A-Za-z_][\w:]*)")

# Functions whose allocation-freedom the acceptance criteria rely on (zero
# steady-state allocations per estimate / ensemble tick). A whole-tree run
# fails if any of these loses its LQS_NOALLOC marker — the symmetric
# guarantee to REQUIRED_DETERMINISTIC below.
REQUIRED_NOALLOC: Tuple[str, ...] = (
    "ProgressEstimator::EstimateInto",
    "EnsembleEstimator::EstimateInto",
    # The bounds-engine pipeline (PR 10): both the dispatcher and the
    # LpBound engine sit on the per-snapshot hot path of every bounding
    # estimator configuration.
    "ComputeBoundsPipelineInto",
    "ComputeLpBoundsInto",
)


def check_noalloc(model: SourceModel,
                  pairing_file: Optional[str] = None,
                  pairing_text: Optional[str] = None,
                  root: Optional[str] = None,
                  required: Optional[Tuple[str, ...]] = None
                  ) -> List[Finding]:
    """Transitive call-graph allocation-freedom of LQS_NOALLOC functions.

    From every definition whose qualified name carries LQS_NOALLOC, walk all
    resolvable non-virtual call chains. Any reachable lexical allocation
    site (operator new, the malloc family, make_unique/make_shared, growing
    container member calls) is a finding, reported with the full chain —
    unless the function is an LQS_ALLOC_OK boundary or the allocation line
    carries a comment-level LQS_ALLOC_OK("reason"). Empty justifications
    are findings in their own right.

    With a pairing file (tests/estimator_alloc_test.cc), additionally
    cross-checks the LQS_NOALLOC annotation set against the runtime test's
    `LQS_NOALLOC_PAIRED:` markers, in both directions. With `required`
    (whole-tree runs pass REQUIRED_NOALLOC), each listed root must carry
    its LQS_NOALLOC marker.
    """
    findings: List[Finding] = []
    annotations = _merge_annotations(model)
    defs_by_name = model.definitions_by_name()
    visibility = _Visibility(model, root) if root is not None else None

    if required:
        decl_of: Dict[str, Tuple[str, int]] = {}
        for fn in model.functions:
            decl_of.setdefault(fn.qualname, (fn.file, fn.line))
        for name in required:
            ann = annotations.get(name)
            if ann is not None and ann.noalloc:
                continue
            file, line = (ann.decl_site if ann is not None and ann.decl_site
                          else decl_of.get(name, ("<tree>", 0)))
            findings.append(
                Finding(
                    "noalloc", file, line,
                    f"required noalloc root '{name}' is missing its "
                    "LQS_NOALLOC marker"))

    # Escape hatches with empty justifications (function-level).
    for qualname, ann in sorted(annotations.items()):
        if ann.alloc_ok is not None and not ann.alloc_ok.strip():
            file, line = ann.decl_site if ann.decl_site else ("<unknown>", 0)
            findings.append(
                Finding(
                    "noalloc", file, line,
                    f"LQS_ALLOC_OK on '{qualname}' requires a non-empty "
                    "justification string"))
        if ann.noalloc and ann.alloc_ok is not None:
            file, line = ann.decl_site if ann.decl_site else ("<unknown>", 0)
            findings.append(
                Finding(
                    "noalloc", file, line,
                    f"'{qualname}' is marked both LQS_NOALLOC and "
                    "LQS_ALLOC_OK — pick one"))

    roots = [
        fn for fn in model.functions
        if fn.is_definition and annotations[fn.qualname].noalloc
    ]
    reported: Set[Tuple[str, int, str]] = set()
    for root in roots:
        visited: Set[str] = set()
        # Stack of (function, chain-so-far). Chain entries are rendered
        # "qualname (file:line)".
        stack: List[Tuple[FunctionInfo, List[str]]] = [
            (root, [f"{root.qualname} ({root.file}:{root.line})"])
        ]
        while stack:
            fn, chain = stack.pop()
            if fn.qualname in visited:
                continue
            visited.add(fn.qualname)
            for alloc in fn.allocs:
                sup = model.suppression_for(fn.file, alloc.line, "alloc-ok")
                if sup is not None:
                    if not sup.justification:
                        key = (fn.file, sup.line, "empty-sup")
                        if key not in reported:
                            reported.add(key)
                            findings.append(
                                Finding(
                                    "noalloc", fn.file, sup.line,
                                    "LQS_ALLOC_OK requires a non-empty "
                                    "justification string"))
                    continue
                key = (fn.file, alloc.line, root.qualname)
                if key in reported:
                    continue
                reported.add(key)
                findings.append(
                    Finding(
                        "noalloc", fn.file, alloc.line,
                        f"'{root.qualname}' is LQS_NOALLOC but reaches "
                        f"allocating operation '{alloc.what}' in "
                        f"'{fn.qualname}'",
                        chain=chain + [f"{alloc.what} "
                                       f"({fn.file}:{alloc.line})"]))
            visible = (visibility.from_file(fn.file)
                       if visibility is not None else None)
            for call in fn.calls:
                sup = model.suppression_for(fn.file, call.line, "alloc-ok")
                if sup is not None:
                    # A line-level LQS_ALLOC_OK also stops traversal into
                    # calls made on that line.
                    if not sup.justification:
                        key = (fn.file, sup.line, "empty-sup")
                        if key not in reported:
                            reported.add(key)
                            findings.append(
                                Finding(
                                    "noalloc", fn.file, sup.line,
                                    "LQS_ALLOC_OK requires a non-empty "
                                    "justification string"))
                    continue
                for callee in _resolve(call, defs_by_name, visible):
                    ann = annotations[callee.qualname]
                    if ann.virtual:
                        continue  # non-virtual chains only
                    if ann.alloc_ok is not None:
                        continue  # deliberate allocation boundary
                    if callee.qualname in visited:
                        continue
                    stack.append(
                        (callee,
                         chain + [f"{callee.qualname} "
                                  f"({fn.file}:{call.line})"]))

    # Annotation <-> runtime-test pairing.
    if pairing_file is not None:
        if pairing_text is None:
            try:
                with open(pairing_file, "r", encoding="utf-8") as handle:
                    pairing_text = handle.read()
            except OSError as err:
                findings.append(
                    Finding("noalloc", pairing_file, 0,
                            f"cannot read pairing file: {err}"))
                pairing_text = ""
        paired = {
            name[len("lqs::"):] if name.startswith("lqs::") else name
            for name in _PAIRED.findall(pairing_text)
        }
        annotated = {
            qualname for qualname, ann in annotations.items() if ann.noalloc
        }
        for name in sorted(paired - annotated):
            line = _line_of(pairing_text, name)
            findings.append(
                Finding(
                    "noalloc", pairing_file, line,
                    f"runtime allocation check is paired with LQS_NOALLOC "
                    f"on '{name}', but no such annotation exists in the "
                    "tree — remove the check or restore the annotation"))
        for name in sorted(annotated - paired):
            ann = annotations[name]
            file, line = ann.decl_site if ann.decl_site else ("<unknown>", 0)
            findings.append(
                Finding(
                    "noalloc", file, line,
                    f"LQS_NOALLOC on '{name}' has no paired runtime check "
                    f"(add an 'LQS_NOALLOC_PAIRED: {name}' marker next to "
                    f"the covering assertion in {pairing_file})"))
    return findings


def _line_of(text: str, needle: str) -> int:
    for lineno, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return lineno
    return 0


# ---------------------------------------------------------------------------
# layering

# The architecture DAG: each src/ layer lists the layers it may depend on
# (directly; the sets are transitively closed by construction). Lower layers
# first. tests/, bench/, examples/ sit on top and may include anything.
DEFAULT_LAYERS: Dict[str, Set[str]] = {
    "common": set(),
    "dmv": {"common"},
    "storage": {"common"},
    "exec": {"common", "dmv", "storage"},
    "optimizer": {"common", "dmv", "exec", "storage"},
    "lqs": {"common", "dmv", "exec", "storage"},
    "ensemble": {"common", "dmv", "exec", "storage", "lqs"},
    "analysis": {"common", "dmv", "exec", "storage", "lqs"},
    "remote": {"common", "dmv", "exec", "storage"},
    "workload": {"common", "dmv", "exec", "optimizer", "storage"},
    "monitor": {
        "common", "dmv", "exec", "storage", "lqs", "ensemble", "analysis",
        "remote"
    },
}


def _config_cycle(layers: Dict[str, Set[str]]) -> Optional[List[str]]:
    """Kahn's algorithm over the layer config; returns a cycle if any."""
    # indegree counts edges dep -> layer (layer depends on dep).
    indegree = {
        layer: len([d for d in deps if d in layers])
        for layer, deps in layers.items()
    }
    queue = [layer for layer, deg in indegree.items() if deg == 0]
    seen = 0
    dependents: Dict[str, List[str]] = {layer: [] for layer in layers}
    for layer, deps in layers.items():
        for dep in deps:
            if dep in dependents:
                dependents[dep].append(layer)
    while queue:
        layer = queue.pop()
        seen += 1
        for dependent in dependents[layer]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                queue.append(dependent)
    if seen == len(layers):
        return None
    return sorted(layer for layer, deg in indegree.items() if deg > 0)


def check_layering(model: SourceModel,
                   root: str,
                   layers: Optional[Dict[str, Set[str]]] = None
                   ) -> List[Finding]:
    """Enforce the include DAG across src/ layers and reject include cycles.

    * A file in src/<layer>/ may include "other/..." only when `other` is
      the same layer or in the layer's allowed-dependency set.
    * The configured DAG itself must be acyclic (a config error is a
      finding, so CI catches a bad edit to the map).
    * File-level include cycles are findings wherever they occur (any
      directory), independent of the layer map.
    """
    if layers is None:
        layers = DEFAULT_LAYERS
    findings: List[Finding] = []

    cycle = _config_cycle(layers)
    if cycle is not None:
        findings.append(
            Finding(
                "layering", "<layer-config>", 0,
                "layer configuration contains a dependency cycle through: "
                + ", ".join(cycle)))

    for path, includes in sorted(model.includes.items()):
        rel = os.path.relpath(path, root)
        parts = rel.replace(os.sep, "/").split("/")
        if len(parts) < 3 or parts[0] != "src":
            continue  # only src/<layer>/ files are rank-constrained
        layer = parts[1]
        allowed = layers.get(layer)
        for line, include in includes:
            include_layer = include.split("/", 1)[0]
            if include_layer not in layers or include_layer == layer:
                continue
            if allowed is None:
                findings.append(
                    Finding(
                        "layering", path, line,
                        f"directory src/{layer}/ is not in the layer map — "
                        "add it to DEFAULT_LAYERS (tools/lqs_verify/"
                        "checks.py) with its allowed dependencies"))
                break
            if include_layer not in allowed:
                ok = ", ".join(sorted(allowed)) if allowed else "(none)"
                findings.append(
                    Finding(
                        "layering", path, line,
                        f"layer '{layer}' may not include '{include}' — "
                        f"'{include_layer}' is above or beside it in the "
                        f"DAG (allowed dependencies: {ok})"))

    findings.extend(_include_cycles(model, root))
    return findings


def _include_cycles(model: SourceModel, root: str) -> List[Finding]:
    # Resolve include strings to scanned files: the codebase writes
    # includes relative to src/ (e.g. "lqs/bounds.h") or the repo root
    # (e.g. "tests/test_util.h").
    scanned = {
        os.path.normpath(path): path for path in model.includes
    }

    def resolve(include: str) -> Optional[str]:
        for base in ("src", "."):
            candidate = os.path.normpath(os.path.join(root, base, include))
            if candidate in scanned:
                return scanned[candidate]
        return None

    graph: Dict[str, List[Tuple[str, int]]] = {}
    for path, includes in model.includes.items():
        edges = []
        for line, include in includes:
            target = resolve(include)
            if target is not None and target != path:
                edges.append((target, line))
        graph[path] = edges

    findings: List[Finding] = []
    seen_cycles: Set[Tuple[str, ...]] = set()
    # Iterative DFS with an explicit color map (white/grey/black).
    color: Dict[str, int] = {}
    stack_path: List[str] = []

    def visit(start: str) -> None:
        stack: List[Tuple[str, int]] = [(start, 0)]
        while stack:
            node, edge_idx = stack[-1]
            if edge_idx == 0:
                color[node] = 1
                stack_path.append(node)
            edges = graph.get(node, [])
            if edge_idx >= len(edges):
                stack.pop()
                stack_path.pop()
                color[node] = 2
                continue
            stack[-1] = (node, edge_idx + 1)
            target, line = edges[edge_idx]
            state = color.get(target, 0)
            if state == 1:
                cycle = stack_path[stack_path.index(target):] + [target]
                canon = tuple(sorted(set(cycle)))
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    pretty = " -> ".join(
                        os.path.relpath(f, root) for f in cycle)
                    findings.append(
                        Finding("layering", node, line,
                                f"include cycle: {pretty}"))
            elif state == 0:
                stack.append((target, 0))

    for path in sorted(graph):
        if color.get(path, 0) == 0:
            visit(path)
    return findings


# ---------------------------------------------------------------------------
# locks: construction-rank discipline, rank-increasing acquisition chains,
# blocking-under-lock, and GUARDED_BY annotation coverage.

# The lock primitive itself is the one place allowed to touch raw rank
# machinery; its functions and members are the mechanism the rules protect.
_LOCK_EXEMPT_FILES = {"src/common/mutex.h", "src/common/mutex.cc"}

# Calls that block (or fan out to worker threads that block) and therefore
# must never be reached while an lqs::Mutex is held. CondVar::Wait is
# handled via AcquireSite (waiting on the *held* mutex is the one legal
# blocking shape).
_BLOCKING_CALLS = {
    "Poll": "SnapshotEndpoint::Poll",
    "ParallelFor": "ThreadPool::ParallelFor",
}


def _relpath(path: str, root: Optional[str]) -> str:
    rel = os.path.relpath(path, root) if root else path
    return rel.replace(os.sep, "/")


def check_locks(model: SourceModel, root: str) -> List[Finding]:
    """Static lock discipline over src/ (DESIGN.md §14).

    (a) every owned lqs::Mutex is constructed with a *named* rank from the
        lock_rank registry — default construction, numeric literals, and
        unregistered names are findings;
    (b) every statically-derivable acquisition chain is strictly
        rank-increasing, including chains through resolvable non-virtual
        calls (the compile-time mirror of the runtime rank checker, which
        only fires on paths a debug test happens to execute);
    (c) no blocking call (CondVar::Wait on another mutex,
        SnapshotEndpoint::Poll, ThreadPool::ParallelFor) is reachable while
        a lock is held;
    (d) every mutable member of a mutex-owning class is GUARDED_BY-annotated
        or excused with `// lqs-verify: guard-ok(reason)`.

    `// lqs-verify: lock-ok(reason)` on (or directly above) an acquisition
    or call line silences rules (a)-(c) for that site; empty reasons are
    findings. tests/, bench/ and examples/ are out of scope — death tests
    violate the discipline on purpose.
    """
    findings: List[Finding] = []
    reported: Set[Tuple[str, int, str]] = set()

    def report(file: str, line: int, message: str,
               chain: Optional[List[str]] = None) -> None:
        key = (file, line, message)
        if key not in reported:
            reported.add(key)
            findings.append(
                Finding("locks", file, line, message, chain=chain or []))

    def in_scope(path: str) -> bool:
        rel = _relpath(path, root)
        return rel.startswith("src/") and rel not in _LOCK_EXEMPT_FILES

    def lock_ok(file: str, line: int) -> bool:
        sup = model.suppression_for(file, line, "lock-ok")
        if sup is None:
            return False
        if not sup.justification:
            report(file, sup.line,
                   "lock-ok escape hatch requires a non-empty reason")
        return True

    ranks = model.lock_ranks

    # Mutex name -> possible rank values (for call-chain resolution) and
    # class -> {mutex member -> rank value or None} (for coverage + the
    # enclosing-class fast path).
    mutex_ranks: Dict[str, Set[Optional[int]]] = {}
    class_mutexes: Dict[str, Dict[str, Optional[int]]] = {}

    def rank_value(m) -> Optional[int]:
        if m.rank_name is not None and m.rank_name in ranks:
            return ranks[m.rank_name]
        if m.rank_literal is not None:
            return m.rank_literal
        return None

    def rank_findings(m, file: str) -> None:
        if lock_ok(file, m.line):
            return
        if not m.has_init or (m.rank_name is None and m.rank_literal is None):
            report(file, m.line,
                   f"mutex '{m.name}' is constructed with the default rank — "
                   "give it a named rank from the lock_rank registry")
        elif m.rank_literal is not None:
            report(file, m.line,
                   f"mutex '{m.name}' uses numeric rank {m.rank_literal} — "
                   "register and use a named lock_rank constant")
        elif m.rank_name not in ranks:
            report(file, m.line,
                   f"mutex '{m.name}' uses rank '{m.rank_name}', which is "
                   "not registered in the lock_rank registry")

    for cls in model.classes:
        per: Dict[str, Optional[int]] = {}
        for m in cls.mutexes:
            per[m.name] = rank_value(m)
            mutex_ranks.setdefault(m.name, set()).add(per[m.name])
        class_mutexes.setdefault(cls.name, {}).update(per)
        if not in_scope(cls.file):
            continue
        # Rule (a): construction-site rank discipline.
        for m in cls.mutexes:
            rank_findings(m, cls.file)
        # Rule (d): annotation coverage.
        for field in cls.fields:
            if field.is_static or field.is_const or field.is_sync:
                continue
            if field.guarded_by is None:
                sup = model.suppression_for(cls.file, field.line, "guard-ok")
                if sup is None:
                    report(cls.file, field.line,
                           f"mutable member '{field.name}' of mutex-owning "
                           f"class '{cls.name}' has no GUARDED_BY annotation "
                           "— annotate it or excuse it with "
                           "// lqs-verify: guard-ok(reason)")
                elif not sup.justification:
                    report(cls.file, sup.line,
                           "guard-ok escape hatch requires a non-empty "
                           "reason")
            elif field.guarded_by not in per:
                report(cls.file, field.line,
                       f"GUARDED_BY on '{field.name}' names "
                       f"'{field.guarded_by or '<empty>'}', which is not a "
                       f"mutex member of '{cls.name}'")

    # Rule (a) for function-local mutexes in src/.
    for fn in model.functions:
        if fn.is_definition and in_scope(fn.file):
            for m in fn.local_mutexes:
                rank_findings(m, fn.file)

    # Rules (b) + (c): walk acquisition chains through the call graph.
    annotations = _merge_annotations(model)
    defs_by_name = model.definitions_by_name()
    visibility = _Visibility(model, root) if root is not None else None

    def rank_of(mutex: str, qualname: str) -> Optional[int]:
        """Rank of `mutex` as seen from a function named `qualname` —
        prefer the enclosing class's member, fall back to a globally
        unique name."""
        if "::" in qualname:
            enclosing = qualname.rsplit("::", 1)[0].rsplit("::", 1)[-1]
            per = class_mutexes.get(enclosing)
            if per is not None and mutex in per:
                return per[mutex]
        values = mutex_ranks.get(mutex)
        if values is not None and len(values) == 1:
            return next(iter(values))
        return None

    def describe(mutex: str, qualname: str) -> str:
        rank = rank_of(mutex, qualname)
        return f"'{mutex}'" + (f" (rank {rank})" if rank is not None else "")

    visited: Set[Tuple[str, str, frozenset]] = set()

    def walk(fn: FunctionInfo, inherited: Tuple[Tuple[str, Optional[int]],
                                                ...],
             chain: List[str]) -> None:
        key = (fn.qualname, fn.file, frozenset(h[0] for h in inherited))
        if key in visited:
            return
        visited.add(key)
        base = list(inherited)
        for req in annotations.get(fn.qualname, _Annotation()).requires:
            if req not in [h[0] for h in base]:
                base.append((req, rank_of(req, fn.qualname)))

        def effective(lexical: List[str]):
            eff = list(base)
            for name in lexical:
                if name not in [h[0] for h in eff]:
                    eff.append((name, rank_of(name, fn.qualname)))
            return eff

        here = chain + [fn.qualname]
        for acq in fn.acquires:
            if lock_ok(fn.file, acq.line):
                continue
            eff = effective(acq.held)
            if acq.kind == "wait":
                others = [h for h in eff if h[0] != acq.mutex]
                if others:
                    report(fn.file, acq.line,
                           f"CondVar::Wait on '{acq.mutex}' while "
                           f"{describe(others[0][0], fn.qualname)} is held — "
                           "a blocking wait must hold only the waited "
                           "mutex", here)
                continue
            acq_rank = rank_of(acq.mutex, fn.qualname)
            for held_name, held_rank in eff:
                if held_name == acq.mutex:
                    report(fn.file, acq.line,
                           f"recursive acquisition of '{acq.mutex}'", here)
                    continue
                if (acq_rank is not None and held_rank is not None
                        and acq_rank <= held_rank):
                    report(fn.file, acq.line,
                           f"acquiring '{acq.mutex}' (rank {acq_rank}) while "
                           f"'{held_name}' (rank {held_rank}) is held — "
                           "acquisition order must be strictly "
                           "rank-increasing", here)
        for call in fn.calls:
            eff = effective(call.held)
            if not eff:
                continue
            if model.suppression_for(fn.file, call.line, "lock-ok"):
                lock_ok(fn.file, call.line)  # flags empty reasons
                continue
            if call.name in _BLOCKING_CALLS:
                report(fn.file, call.line,
                       f"blocking call {_BLOCKING_CALLS[call.name]} while "
                       f"{describe(eff[0][0], fn.qualname)} is held — "
                       "release the lock first or justify with "
                       "// lqs-verify: lock-ok(reason)", here)
                continue
            visible = (visibility.from_file(fn.file)
                       if visibility is not None else None)
            for callee in _resolve(call, defs_by_name, visible):
                if callee.qualname == fn.qualname:
                    continue
                ann = annotations.get(callee.qualname)
                if ann is not None and ann.virtual:
                    continue  # non-virtual chains only
                if not in_scope(callee.file) and _relpath(
                        callee.file, root) in _LOCK_EXEMPT_FILES:
                    continue  # the primitive layer implements the rules
                walk(callee, tuple(eff), here)

    for fn in model.functions:
        if fn.is_definition and in_scope(fn.file):
            walk(fn, (), [])
    return findings


# ---------------------------------------------------------------------------
# determinism: byte-identity purity of LQS_DETERMINISTIC functions.

# Functions whose determinism the paper's acceptance criteria rely on
# (byte-identical wire round-trips, replay-order-independent estimates,
# thread-count-independent monitor output). A whole-tree run fails if any
# of these loses its LQS_DETERMINISTIC marker.
REQUIRED_DETERMINISTIC: Tuple[str, ...] = (
    "ProgressEstimator::EstimateInto",
    "EnsembleEstimator::EstimateInto",
    "EncodeSnapshot",
    "DecodeSnapshot",
    "EncodeTrace",
    "DecodeTrace",
    "EncodePlanSummary",
    "DecodePlanSummary",
    "EncodePollResponse",
    "DecodePollResponse",
    "EncodeSnapshotDelta",
    "DecodeSnapshotDelta",
    "MakeSnapshotDelta",
    "ApplySnapshotDelta",
    "MonitorService::ComputeStatus",
    # The bounds-engine pipeline (PR 10): bound intervals feed the clamp,
    # so replay-order-independent reports require deterministic engines.
    "ComputeBoundsPipelineInto",
    "ComputeLpBoundsInto",
)


def check_determinism(model: SourceModel,
                      root: Optional[str] = None,
                      required: Optional[Tuple[str, ...]] = None
                      ) -> List[Finding]:
    """No LQS_DETERMINISTIC function may transitively reach a source of
    run-to-run nondeterminism (DESIGN.md §14).

    Hazards: wall-clock reads (seeded VirtualClock is the sanctioned time
    source), std::rand / std::random_device / engine construction (seeded
    lqs::Rng is the sanctioned randomness source), environment reads,
    iteration over std::unordered_* containers (hash-seed-dependent order),
    and iteration over pointer-keyed ordered containers (address-dependent
    order). Escape: `// lqs-verify: det-ok(reason)` on or directly above
    the hazard (or call) line; empty reasons are findings. Chains stop at
    virtual calls, like noalloc.
    """
    findings: List[Finding] = []
    annotations = _merge_annotations(model)
    defs_by_name = model.definitions_by_name()
    visibility = _Visibility(model, root) if root is not None else None
    reported: Set[Tuple[str, int, str]] = set()

    def report(file: str, line: int, message: str,
               chain: Optional[List[str]] = None) -> None:
        key = (file, line, message)
        if key not in reported:
            reported.add(key)
            findings.append(
                Finding("determinism", file, line, message, chain=chain or []))

    if required:
        decl_of: Dict[str, Tuple[str, int]] = {}
        for fn in model.functions:
            decl_of.setdefault(fn.qualname, (fn.file, fn.line))
        for name in required:
            ann = annotations.get(name)
            if ann is not None and ann.deterministic:
                continue
            file, line = (ann.decl_site if ann is not None and ann.decl_site
                          else decl_of.get(name, ("<tree>", 0)))
            report(file, line,
                   f"required deterministic root '{name}' is missing its "
                   "LQS_DETERMINISTIC marker")

    def hazard_message(hazard) -> Optional[str]:
        if hazard.kind == "wall-clock":
            return (f"reads the wall clock via '{hazard.what}' "
                    "(VirtualClock is the sanctioned time source)")
        if hazard.kind == "rand":
            return (f"uses nondeterministic randomness '{hazard.what}' "
                    "(seeded lqs::Rng is the sanctioned source)")
        if hazard.kind == "env":
            return f"reads the environment via '{hazard.what}'"
        if hazard.kind == "iter":
            if hazard.what in model.unordered_names:
                return (f"iterates unordered container '{hazard.what}' — "
                        "iteration order depends on the hash seed")
            if hazard.what in model.ptr_keyed_names:
                return (f"iterates pointer-keyed container '{hazard.what}' "
                        "— ordering depends on allocation addresses")
            return None
        return None

    def det_ok(file: str, line: int) -> bool:
        sup = model.suppression_for(file, line, "det-ok")
        if sup is None:
            return False
        if not sup.justification:
            report(file, sup.line,
                   "det-ok escape hatch requires a non-empty reason")
        return True

    roots = [
        fn for fn in model.functions
        if fn.is_definition and annotations[fn.qualname].deterministic
    ]
    for det_root in roots:
        visited: Set[str] = set()
        stack: List[Tuple[FunctionInfo, List[str]]] = [
            (det_root,
             [f"{det_root.qualname} ({det_root.file}:{det_root.line})"])
        ]
        while stack:
            fn, chain = stack.pop()
            if fn.qualname in visited:
                continue
            visited.add(fn.qualname)
            for hazard in fn.hazards:
                message = hazard_message(hazard)
                if message is None:
                    continue
                if det_ok(fn.file, hazard.line):
                    continue
                report(fn.file, hazard.line,
                       f"'{det_root.qualname}' is LQS_DETERMINISTIC but "
                       f"{message} in '{fn.qualname}'",
                       chain + [f"{hazard.what} ({fn.file}:{hazard.line})"])
            visible = (visibility.from_file(fn.file)
                       if visibility is not None else None)
            for call in fn.calls:
                if model.suppression_for(fn.file, call.line, "det-ok"):
                    det_ok(fn.file, call.line)  # flags empty reasons
                    continue
                for callee in _resolve(call, defs_by_name, visible):
                    ann = annotations.get(callee.qualname)
                    if ann is not None and ann.virtual:
                        continue  # non-virtual chains only
                    if callee.qualname in visited:
                        continue
                    stack.append(
                        (callee,
                         chain + [f"{callee.qualname} "
                                  f"({fn.file}:{call.line})"]))
    return findings
