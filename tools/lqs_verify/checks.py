"""The three lqs-verify checkers: status-discipline, noalloc, layering.

Each checker consumes the frontend-agnostic model.SourceModel and returns a
list of model.Finding. Checker semantics (and the escape hatches) are
specified in DESIGN.md §12 and pinned down by the fixture suite in
testdata/ + test_lqs_verify.py.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Set, Tuple

from model import Finding, FunctionInfo, SourceModel

# ---------------------------------------------------------------------------
# status-discipline


def check_status(model: SourceModel) -> List[Finding]:
    """Flag Status/StatusOr-returning calls whose result is dropped.

    Two shapes:
      * discarded: the call is a bare expression statement (including an
        explicit `(void)` cast — intent must be spelled out with a
        `// lqs-verify: status-ok(reason)` suppression instead);
      * bound but never consulted: `Status s = f(...);` where `s` does not
        appear again in the enclosing body.

    The compiler already rejects plain discards ([[nodiscard]] +
    -Werror=unused-result); this checker keeps flagging them for
    configurations built without the warning, and adds the never-consulted
    analysis the compiler cannot do.
    """
    findings: List[Finding] = []
    for fn in model.functions:
        if not fn.is_definition:
            continue
        for call in fn.calls:
            if call.name not in model.status_names:
                continue
            sup = model.suppression_for(fn.file, call.line, "status-ok")
            if call.discarded:
                if sup is not None:
                    if not sup.justification:
                        findings.append(
                            Finding(
                                "status", fn.file, call.line,
                                "status-ok suppression requires a "
                                "non-empty reason"))
                    continue
                how = ("explicitly (void)-cast away"
                       if call.void_cast else "discarded")
                findings.append(
                    Finding(
                        "status", fn.file, call.line,
                        f"result of Status-returning call '{call.name}' is "
                        f"{how} in '{fn.qualname}' — consult it or suppress "
                        "with // lqs-verify: status-ok(reason)"))
            elif call.assigned_to is not None and not call.consulted:
                if sup is not None:
                    if not sup.justification:
                        findings.append(
                            Finding(
                                "status", fn.file, call.line,
                                "status-ok suppression requires a "
                                "non-empty reason"))
                    continue
                findings.append(
                    Finding(
                        "status", fn.file, call.line,
                        f"Status result of '{call.name}' is bound to "
                        f"'{call.assigned_to}' but never consulted in "
                        f"'{fn.qualname}'"))
    return findings


# ---------------------------------------------------------------------------
# noalloc


class _Annotation:
    __slots__ = ("noalloc", "alloc_ok", "virtual", "decl_site")

    def __init__(self) -> None:
        self.noalloc = False
        self.alloc_ok: Optional[str] = None
        self.virtual = False
        self.decl_site: Optional[Tuple[str, int]] = None


def _merge_annotations(model: SourceModel) -> Dict[str, _Annotation]:
    """Annotations and virtual-ness unified across decls and defs of the
    same qualified name (headers carry the annotations; .cc files the
    bodies)."""
    merged: Dict[str, _Annotation] = {}
    for fn in model.functions:
        ann = merged.setdefault(fn.qualname, _Annotation())
        ann.noalloc = ann.noalloc or fn.noalloc
        ann.virtual = ann.virtual or fn.is_virtual
        if fn.alloc_ok is not None:
            if ann.alloc_ok is None or len(fn.alloc_ok) > len(ann.alloc_ok):
                ann.alloc_ok = fn.alloc_ok
        if (fn.noalloc or fn.alloc_ok is not None) and ann.decl_site is None:
            ann.decl_site = (fn.file, fn.line)
    return merged


def _resolve(call, defs_by_name, visible) -> List[FunctionInfo]:
    candidates = defs_by_name.get(call.name, [])
    if call.qualifier:
        qualified = [
            fn for fn in candidates
            if fn.qualname.endswith(f"{call.qualifier}::{call.name}")
        ]
        if qualified:
            candidates = qualified
    if visible is not None:
        candidates = [fn for fn in candidates if visible(fn.qualname)]
    return candidates


class _Visibility:
    """Include-closure-based call resolution filter.

    Name-only resolution conflates unrelated functions that share a simple
    name (`report_.Add` in analysis/ vs `QueryList::Add` in workload/). A
    candidate is admissible from a caller file only when some declaration or
    definition of its qualified name lives in that file or its transitive
    include closure — mirroring what the compiler could actually have
    resolved the call to.
    """

    def __init__(self, model: SourceModel, root: str) -> None:
        self._root = root
        self._scanned = {os.path.normpath(p): p for p in model.includes}
        self._graph: Dict[str, List[str]] = {}
        for path, includes in model.includes.items():
            self._graph[path] = [
                t for t in (self._resolve_include(inc)
                            for _, inc in includes) if t is not None
            ]
        self._decl_files: Dict[str, Set[str]] = {}
        for fn in model.functions:
            self._decl_files.setdefault(fn.qualname, set()).add(fn.file)
        self._closures: Dict[str, Set[str]] = {}

    def _resolve_include(self, include: str) -> Optional[str]:
        for base in ("src", "."):
            candidate = os.path.normpath(
                os.path.join(self._root, base, include))
            if candidate in self._scanned:
                return self._scanned[candidate]
        return None

    def closure(self, path: str) -> Set[str]:
        cached = self._closures.get(path)
        if cached is not None:
            return cached
        seen: Set[str] = {path}
        stack = [path]
        while stack:
            for target in self._graph.get(stack.pop(), []):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        self._closures[path] = seen
        return seen

    def from_file(self, caller_file: str):
        visible_files = self.closure(caller_file)

        def visible(qualname: str) -> bool:
            return not self._decl_files.get(qualname, set()).isdisjoint(
                visible_files)

        return visible


_PAIRED = re.compile(r"LQS_NOALLOC_PAIRED:\s*([A-Za-z_][\w:]*)")


def check_noalloc(model: SourceModel,
                  pairing_file: Optional[str] = None,
                  pairing_text: Optional[str] = None,
                  root: Optional[str] = None) -> List[Finding]:
    """Transitive call-graph allocation-freedom of LQS_NOALLOC functions.

    From every definition whose qualified name carries LQS_NOALLOC, walk all
    resolvable non-virtual call chains. Any reachable lexical allocation
    site (operator new, the malloc family, make_unique/make_shared, growing
    container member calls) is a finding, reported with the full chain —
    unless the function is an LQS_ALLOC_OK boundary or the allocation line
    carries a comment-level LQS_ALLOC_OK("reason"). Empty justifications
    are findings in their own right.

    With a pairing file (tests/estimator_alloc_test.cc), additionally
    cross-checks the LQS_NOALLOC annotation set against the runtime test's
    `LQS_NOALLOC_PAIRED:` markers, in both directions.
    """
    findings: List[Finding] = []
    annotations = _merge_annotations(model)
    defs_by_name = model.definitions_by_name()
    visibility = _Visibility(model, root) if root is not None else None

    # Escape hatches with empty justifications (function-level).
    for qualname, ann in sorted(annotations.items()):
        if ann.alloc_ok is not None and not ann.alloc_ok.strip():
            file, line = ann.decl_site if ann.decl_site else ("<unknown>", 0)
            findings.append(
                Finding(
                    "noalloc", file, line,
                    f"LQS_ALLOC_OK on '{qualname}' requires a non-empty "
                    "justification string"))
        if ann.noalloc and ann.alloc_ok is not None:
            file, line = ann.decl_site if ann.decl_site else ("<unknown>", 0)
            findings.append(
                Finding(
                    "noalloc", file, line,
                    f"'{qualname}' is marked both LQS_NOALLOC and "
                    "LQS_ALLOC_OK — pick one"))

    roots = [
        fn for fn in model.functions
        if fn.is_definition and annotations[fn.qualname].noalloc
    ]
    reported: Set[Tuple[str, int, str]] = set()
    for root in roots:
        visited: Set[str] = set()
        # Stack of (function, chain-so-far). Chain entries are rendered
        # "qualname (file:line)".
        stack: List[Tuple[FunctionInfo, List[str]]] = [
            (root, [f"{root.qualname} ({root.file}:{root.line})"])
        ]
        while stack:
            fn, chain = stack.pop()
            if fn.qualname in visited:
                continue
            visited.add(fn.qualname)
            for alloc in fn.allocs:
                sup = model.suppression_for(fn.file, alloc.line, "alloc-ok")
                if sup is not None:
                    if not sup.justification:
                        key = (fn.file, sup.line, "empty-sup")
                        if key not in reported:
                            reported.add(key)
                            findings.append(
                                Finding(
                                    "noalloc", fn.file, sup.line,
                                    "LQS_ALLOC_OK requires a non-empty "
                                    "justification string"))
                    continue
                key = (fn.file, alloc.line, root.qualname)
                if key in reported:
                    continue
                reported.add(key)
                findings.append(
                    Finding(
                        "noalloc", fn.file, alloc.line,
                        f"'{root.qualname}' is LQS_NOALLOC but reaches "
                        f"allocating operation '{alloc.what}' in "
                        f"'{fn.qualname}'",
                        chain=chain + [f"{alloc.what} "
                                       f"({fn.file}:{alloc.line})"]))
            visible = (visibility.from_file(fn.file)
                       if visibility is not None else None)
            for call in fn.calls:
                sup = model.suppression_for(fn.file, call.line, "alloc-ok")
                if sup is not None:
                    # A line-level LQS_ALLOC_OK also stops traversal into
                    # calls made on that line.
                    if not sup.justification:
                        key = (fn.file, sup.line, "empty-sup")
                        if key not in reported:
                            reported.add(key)
                            findings.append(
                                Finding(
                                    "noalloc", fn.file, sup.line,
                                    "LQS_ALLOC_OK requires a non-empty "
                                    "justification string"))
                    continue
                for callee in _resolve(call, defs_by_name, visible):
                    ann = annotations[callee.qualname]
                    if ann.virtual:
                        continue  # non-virtual chains only
                    if ann.alloc_ok is not None:
                        continue  # deliberate allocation boundary
                    if callee.qualname in visited:
                        continue
                    stack.append(
                        (callee,
                         chain + [f"{callee.qualname} "
                                  f"({fn.file}:{call.line})"]))

    # Annotation <-> runtime-test pairing.
    if pairing_file is not None:
        if pairing_text is None:
            try:
                with open(pairing_file, "r", encoding="utf-8") as handle:
                    pairing_text = handle.read()
            except OSError as err:
                findings.append(
                    Finding("noalloc", pairing_file, 0,
                            f"cannot read pairing file: {err}"))
                pairing_text = ""
        paired = {
            name[len("lqs::"):] if name.startswith("lqs::") else name
            for name in _PAIRED.findall(pairing_text)
        }
        annotated = {
            qualname for qualname, ann in annotations.items() if ann.noalloc
        }
        for name in sorted(paired - annotated):
            line = _line_of(pairing_text, name)
            findings.append(
                Finding(
                    "noalloc", pairing_file, line,
                    f"runtime allocation check is paired with LQS_NOALLOC "
                    f"on '{name}', but no such annotation exists in the "
                    "tree — remove the check or restore the annotation"))
        for name in sorted(annotated - paired):
            ann = annotations[name]
            file, line = ann.decl_site if ann.decl_site else ("<unknown>", 0)
            findings.append(
                Finding(
                    "noalloc", file, line,
                    f"LQS_NOALLOC on '{name}' has no paired runtime check "
                    f"(add an 'LQS_NOALLOC_PAIRED: {name}' marker next to "
                    f"the covering assertion in {pairing_file})"))
    return findings


def _line_of(text: str, needle: str) -> int:
    for lineno, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return lineno
    return 0


# ---------------------------------------------------------------------------
# layering

# The architecture DAG: each src/ layer lists the layers it may depend on
# (directly; the sets are transitively closed by construction). Lower layers
# first. tests/, bench/, examples/ sit on top and may include anything.
DEFAULT_LAYERS: Dict[str, Set[str]] = {
    "common": set(),
    "dmv": {"common"},
    "storage": {"common"},
    "exec": {"common", "dmv", "storage"},
    "optimizer": {"common", "dmv", "exec", "storage"},
    "lqs": {"common", "dmv", "exec", "storage"},
    "analysis": {"common", "dmv", "exec", "storage", "lqs"},
    "remote": {"common", "dmv", "exec", "storage"},
    "workload": {"common", "dmv", "exec", "optimizer", "storage"},
    "monitor": {
        "common", "dmv", "exec", "storage", "lqs", "analysis", "remote"
    },
}


def _config_cycle(layers: Dict[str, Set[str]]) -> Optional[List[str]]:
    """Kahn's algorithm over the layer config; returns a cycle if any."""
    # indegree counts edges dep -> layer (layer depends on dep).
    indegree = {
        layer: len([d for d in deps if d in layers])
        for layer, deps in layers.items()
    }
    queue = [layer for layer, deg in indegree.items() if deg == 0]
    seen = 0
    dependents: Dict[str, List[str]] = {layer: [] for layer in layers}
    for layer, deps in layers.items():
        for dep in deps:
            if dep in dependents:
                dependents[dep].append(layer)
    while queue:
        layer = queue.pop()
        seen += 1
        for dependent in dependents[layer]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                queue.append(dependent)
    if seen == len(layers):
        return None
    return sorted(layer for layer, deg in indegree.items() if deg > 0)


def check_layering(model: SourceModel,
                   root: str,
                   layers: Optional[Dict[str, Set[str]]] = None
                   ) -> List[Finding]:
    """Enforce the include DAG across src/ layers and reject include cycles.

    * A file in src/<layer>/ may include "other/..." only when `other` is
      the same layer or in the layer's allowed-dependency set.
    * The configured DAG itself must be acyclic (a config error is a
      finding, so CI catches a bad edit to the map).
    * File-level include cycles are findings wherever they occur (any
      directory), independent of the layer map.
    """
    if layers is None:
        layers = DEFAULT_LAYERS
    findings: List[Finding] = []

    cycle = _config_cycle(layers)
    if cycle is not None:
        findings.append(
            Finding(
                "layering", "<layer-config>", 0,
                "layer configuration contains a dependency cycle through: "
                + ", ".join(cycle)))

    for path, includes in sorted(model.includes.items()):
        rel = os.path.relpath(path, root)
        parts = rel.replace(os.sep, "/").split("/")
        if len(parts) < 3 or parts[0] != "src":
            continue  # only src/<layer>/ files are rank-constrained
        layer = parts[1]
        allowed = layers.get(layer)
        for line, include in includes:
            include_layer = include.split("/", 1)[0]
            if include_layer not in layers or include_layer == layer:
                continue
            if allowed is None:
                findings.append(
                    Finding(
                        "layering", path, line,
                        f"directory src/{layer}/ is not in the layer map — "
                        "add it to DEFAULT_LAYERS (tools/lqs_verify/"
                        "checks.py) with its allowed dependencies"))
                break
            if include_layer not in allowed:
                ok = ", ".join(sorted(allowed)) if allowed else "(none)"
                findings.append(
                    Finding(
                        "layering", path, line,
                        f"layer '{layer}' may not include '{include}' — "
                        f"'{include_layer}' is above or beside it in the "
                        f"DAG (allowed dependencies: {ok})"))

    findings.extend(_include_cycles(model, root))
    return findings


def _include_cycles(model: SourceModel, root: str) -> List[Finding]:
    # Resolve include strings to scanned files: the codebase writes
    # includes relative to src/ (e.g. "lqs/bounds.h") or the repo root
    # (e.g. "tests/test_util.h").
    scanned = {
        os.path.normpath(path): path for path in model.includes
    }

    def resolve(include: str) -> Optional[str]:
        for base in ("src", "."):
            candidate = os.path.normpath(os.path.join(root, base, include))
            if candidate in scanned:
                return scanned[candidate]
        return None

    graph: Dict[str, List[Tuple[str, int]]] = {}
    for path, includes in model.includes.items():
        edges = []
        for line, include in includes:
            target = resolve(include)
            if target is not None and target != path:
                edges.append((target, line))
        graph[path] = edges

    findings: List[Finding] = []
    seen_cycles: Set[Tuple[str, ...]] = set()
    # Iterative DFS with an explicit color map (white/grey/black).
    color: Dict[str, int] = {}
    stack_path: List[str] = []

    def visit(start: str) -> None:
        stack: List[Tuple[str, int]] = [(start, 0)]
        while stack:
            node, edge_idx = stack[-1]
            if edge_idx == 0:
                color[node] = 1
                stack_path.append(node)
            edges = graph.get(node, [])
            if edge_idx >= len(edges):
                stack.pop()
                stack_path.pop()
                color[node] = 2
                continue
            stack[-1] = (node, edge_idx + 1)
            target, line = edges[edge_idx]
            state = color.get(target, 0)
            if state == 1:
                cycle = stack_path[stack_path.index(target):] + [target]
                canon = tuple(sorted(set(cycle)))
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    pretty = " -> ".join(
                        os.path.relpath(f, root) for f in cycle)
                    findings.append(
                        Finding("layering", node, line,
                                f"include cycle: {pretty}"))
            elif state == 0:
                stack.append((target, 0))

    for path in sorted(graph):
        if color.get(path, 0) == 0:
            visit(path)
    return findings
